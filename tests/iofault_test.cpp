// Deterministic fault-injection shim (common/iofault):
//   (a) the schedule grammar parses the documented forms and rejects every
//       malformed spec with a diagnostic (a typo must never silently run an
//       un-chaosed campaign);
//   (b) triggers (#N, #N+, #pP) fire as pure functions of the per-rule
//       match ordinal: two schedules parsed from the same spec produce
//       bit-identical injection logs over the same op stream;
//   (c) the checked_* shims inject real observable faults — torn writes
//       truncate at the byte offset, flips corrupt exactly one bit of a
//       read — and pass through untouched when no schedule is installed.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>

#include "common/iofault/iofault.h"

namespace winofault::iofault {
namespace {

namespace fs = std::filesystem;

// Installs a schedule for the duration of one test and always clears it,
// so a failing assertion cannot leak chaos into later tests.
class ScopedSchedule {
 public:
  explicit ScopedSchedule(const std::string& spec) {
    std::string error;
    std::optional<FaultSchedule> parsed = FaultSchedule::parse(spec, &error);
    EXPECT_TRUE(parsed.has_value()) << error;
    set_schedule(std::move(parsed));
  }
  ~ScopedSchedule() { set_schedule(std::nullopt); }
};

std::string temp_file(const std::string& name) {
  const std::string path = ::testing::TempDir() + "winofault_iofault_" + name;
  fs::remove(path);
  return path;
}

// ---- (a) grammar ----

TEST(IofaultParse, AcceptsDocumentedForms) {
  std::string error;
  EXPECT_TRUE(FaultSchedule::parse("7:torn(13)@write:*.journal#2", &error)
                  .has_value())
      << error;
  EXPECT_TRUE(
      FaultSchedule::parse("0:eio@read#1;drop@send:client:*#3+", &error)
          .has_value())
      << error;
  EXPECT_TRUE(FaultSchedule::parse("42:flip(5)@recv#p0.25", &error)
                  .has_value())
      << error;
  EXPECT_TRUE(FaultSchedule::parse("1:enospc@any#1+", &error).has_value())
      << error;
}

TEST(IofaultParse, RejectsMalformedSpecsWithDiagnostics) {
  const char* bad[] = {
      "",                        // empty
      "eio@write#1",             // missing seed
      "x:eio@write#1",           // non-integer seed
      "1:eio#1",                 // missing @opclass
      "1:eio@write",             // missing #trigger
      "1:zap@write#1",           // unknown fault
      "1:eio@teleport#1",        // unknown op class
      "1:eio@write#0",           // trigger below 1
      "1:eio@write#p1.5",        // probability out of range
      "1:torn(4)@read#1",        // torn cannot fire on reads
      "1:flip@write#1",          // flip cannot fire on writes
      "1:drop@write#1",          // drop is socket-only
      "1:eio@write#1;;eio@read#1",  // empty rule
      "1:torn(x)@write#1",       // non-integer arg
  };
  for (const char* spec : bad) {
    std::string error;
    EXPECT_FALSE(FaultSchedule::parse(spec, &error).has_value())
        << "accepted: " << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

TEST(IofaultGlob, MatchesPathOrBasename) {
  EXPECT_TRUE(glob_match("*.journal", "/a/b/campaign_12.journal"));
  EXPECT_TRUE(glob_match("campaign_*.seg", "/x/campaign_ab.w0.seg"));
  EXPECT_FALSE(glob_match("*.shard", "/a/b/campaign_12.journal"));
  EXPECT_TRUE(glob_match("b?.claim", "b3.claim"));
  EXPECT_FALSE(glob_match("b?.claim", "b31.claim"));
  EXPECT_TRUE(glob_match("client:*", "client:/tmp/wf.sock"));
  EXPECT_TRUE(glob_match("*", "anything/at/all"));
}

// ---- (b) trigger determinism ----

TEST(IofaultTrigger, NthFiresExactlyOnce) {
  std::string error;
  auto schedule = FaultSchedule::parse("3:eio@write:*.x#2", &error);
  ASSERT_TRUE(schedule.has_value()) << error;
  EXPECT_EQ(schedule->decide(OpClass::kWrite, "a.x").fault, Fault::kNone);
  EXPECT_EQ(schedule->decide(OpClass::kRead, "a.x").fault,
            Fault::kNone);  // op class mismatch: not even a match
  EXPECT_EQ(schedule->decide(OpClass::kWrite, "a.y").fault,
            Fault::kNone);  // glob mismatch: not a match
  EXPECT_EQ(schedule->decide(OpClass::kWrite, "a.x").fault, Fault::kEio);
  EXPECT_EQ(schedule->decide(OpClass::kWrite, "a.x").fault, Fault::kNone);
  EXPECT_EQ(schedule->injections(), 1);
}

TEST(IofaultTrigger, FromNthFiresEveryMatchOnward) {
  std::string error;
  auto schedule = FaultSchedule::parse("3:enospc@write#3+", &error);
  ASSERT_TRUE(schedule.has_value()) << error;
  int fired = 0;
  for (int i = 0; i < 6; ++i) {
    if (schedule->decide(OpClass::kWrite, "f").fault != Fault::kNone) ++fired;
  }
  EXPECT_EQ(fired, 4);  // matches 3,4,5,6
}

TEST(IofaultTrigger, SameSpecSameOpStreamSameInjectionLog) {
  // Probability triggers included: the per-rule RNG is forked from
  // (seed, rule index), so replaying the spec over the same op stream
  // reproduces the injection sequence bit-for-bit. This is the
  // determinism contract CI's chaos log diff relies on.
  const std::string spec =
      "9:eio@read:*.shard#p0.5;torn(8)@write:*.journal#2;slow(1)@any#p0.1";
  std::string error;
  auto a = FaultSchedule::parse(spec, &error);
  auto b = FaultSchedule::parse(spec, &error);
  ASSERT_TRUE(a.has_value() && b.has_value()) << error;
  const struct {
    OpClass op;
    const char* path;
  } stream[] = {
      {OpClass::kRead, "g1.shard"},  {OpClass::kWrite, "c.journal"},
      {OpClass::kRead, "g2.shard"},  {OpClass::kWrite, "c.journal"},
      {OpClass::kFsync, "c.journal"}, {OpClass::kRead, "g1.shard"},
      {OpClass::kWrite, "c.journal"}, {OpClass::kRead, "g3.shard"},
  };
  for (const auto& op : stream) {
    const Decision da = a->decide(op.op, op.path);
    const Decision db = b->decide(op.op, op.path);
    EXPECT_EQ(da.fault, db.fault);
    EXPECT_EQ(da.arg, db.arg);
  }
  EXPECT_EQ(a->log_text(), b->log_text());
  EXPECT_GT(a->injections(), 0);  // the torn #2 rule fired at least
}

// ---- (c) shim behavior ----

TEST(IofaultShim, PassThroughWithoutSchedule) {
  set_schedule(std::nullopt);
  const std::string path = temp_file("pass");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(checked_fwrite("hello", 5, f, path), 5u);
  EXPECT_TRUE(checked_fsync(f, path));
  std::fclose(f);
  f = std::fopen(path.c_str(), "rb");
  char buf[8] = {};
  EXPECT_EQ(checked_fread(buf, 5, f, path), 5u);
  std::fclose(f);
  EXPECT_STREQ(buf, "hello");
  fs::remove(path);
}

TEST(IofaultShim, TornWriteCutsAtByteOffsetAndFailsWithEio) {
  const std::string path = temp_file("torn");
  ScopedSchedule chaos("1:torn(4)@write:*torn*#1");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  errno = 0;
  const std::size_t wrote = checked_fwrite("0123456789", 10, f, path);
  EXPECT_EQ(wrote, 4u);
  EXPECT_EQ(errno, EIO);
  std::fclose(f);
  EXPECT_EQ(fs::file_size(path), 4u);  // the torn prefix reached the file
  fs::remove(path);
}

TEST(IofaultShim, ShortWriteStopsHalfWay) {
  const std::string path = temp_file("short");
  ScopedSchedule chaos("1:short@write:*short*#1");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(checked_fwrite("0123456789", 10, f, path), 5u);
  std::fclose(f);
  fs::remove(path);
}

TEST(IofaultShim, EnospcWriteFailsWithEnospc) {
  const std::string path = temp_file("enospc");
  ScopedSchedule chaos("1:enospc@write:*enospc*#1");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  errno = 0;
  EXPECT_EQ(checked_fwrite("0123456789", 10, f, path), 0u);
  EXPECT_EQ(errno, ENOSPC);
  std::fclose(f);
  fs::remove(path);
}

TEST(IofaultShim, FlipCorruptsExactlyOneBitOfRead) {
  const std::string path = temp_file("flip");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite("0123456789", 1, 10, f), 10u);
    std::fclose(f);
  }
  ScopedSchedule chaos("1:flip(11)@read:*flip*#1");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[10] = {};
  EXPECT_EQ(checked_fread(buf, 10, f, path), 10u);
  std::fclose(f);
  int differing_bits = 0;
  const char* expect = "0123456789";
  for (int i = 0; i < 10; ++i) {
    unsigned char delta =
        static_cast<unsigned char>(buf[i]) ^ static_cast<unsigned char>(expect[i]);
    while (delta != 0) {
      differing_bits += delta & 1;
      delta >>= 1;
    }
  }
  EXPECT_EQ(differing_bits, 1);
  fs::remove(path);
}

TEST(IofaultShim, InjectedRenameFailureSetsErrorCode) {
  const std::string from = temp_file("ren_from");
  const std::string to = temp_file("ren_to");
  {
    std::FILE* f = std::fopen(from.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }
  ScopedSchedule chaos("1:eio@rename:*ren_to*#1");
  std::error_code ec;
  checked_rename(from, to, ec);
  EXPECT_TRUE(ec);
  EXPECT_TRUE(fs::exists(from));  // nothing moved
  EXPECT_FALSE(fs::exists(to));
  fs::remove(from);
}

TEST(IofaultShim, InjectionLogRendersRuleMatchFaultOpArg) {
  ScopedSchedule chaos("5:eio@write:*logfmt*#1");
  const std::string path = temp_file("logfmt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  checked_fwrite("x", 1, f, path);
  std::fclose(f);
  FaultSchedule* s = schedule();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->log_text(/*with_paths=*/false),
            "rule=0 match=1 fault=eio op=write arg=0\n");
  EXPECT_NE(s->log_text().find("path="), std::string::npos);
  fs::remove(path);
}

}  // namespace
}  // namespace winofault::iofault
