// Tests for the float training substrate: learning actually happens on the
// blob task, gradients improve loss, and a trained model exports into the
// quantized engine with consistent predictions.
#include <gtest/gtest.h>

#include "train/sgd.h"

namespace winofault {
namespace {

TrainConfig small_config() {
  TrainConfig config;
  config.in_c = 1;
  config.img = 10;
  config.c1 = 6;
  config.c2 = 6;
  config.classes = 3;
  return config;
}

TEST(BlobData, DeterministicAndLabeled) {
  const TrainConfig config = small_config();
  const BlobData a = make_blob_data(config, 20, 0.3, 5);
  const BlobData b = make_blob_data(config, 20, 0.3, 5);
  ASSERT_EQ(a.images.size(), 20u);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.images[0], b.images[0]);
  for (const int label : a.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, config.classes);
  }
}

TEST(FloatCnn, TrainingImprovesLossAndAccuracy) {
  const TrainConfig config = small_config();
  FloatCnn model(config, 11);
  const BlobData data = make_blob_data(config, 90, 0.4, 7);

  const double initial_accuracy = model.accuracy(data.images, data.labels);
  SgdOptions options;
  options.epochs = 40;
  options.batch_size = 15;
  options.learning_rate = 0.3;
  options.decay = 0.95;
  const TrainStats stats = train_sgd(model, data, options);
  EXPECT_GT(stats.train_accuracy, 0.85)
      << "blob task should be separable (initial " << initial_accuracy << ")";
  EXPECT_LT(stats.final_loss, 1.0);
}

TEST(FloatCnn, LossDecreasesOverSteps) {
  const TrainConfig config = small_config();
  FloatCnn model(config, 13);
  const BlobData data = make_blob_data(config, 30, 0.3, 9);
  double first = 0, last = 0;
  for (int step = 0; step < 20; ++step) {
    const double loss = model.train_batch(data.images, data.labels, 0.3);
    if (step == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first * 0.7);
}

TEST(FloatCnn, ExportsToQuantizedNetworkFaithfully) {
  const TrainConfig config = small_config();
  FloatCnn model(config, 17);
  const BlobData data = make_blob_data(config, 90, 0.4, 19);
  SgdOptions options;
  options.epochs = 40;
  options.batch_size = 15;
  options.learning_rate = 0.3;
  options.decay = 0.95;
  train_sgd(model, data, options);

  const Network net = model.to_network(DType::kInt16, data.images);
  EXPECT_TRUE(net.calibrated());
  EXPECT_EQ(net.num_protectable(), 3);

  // Quantized predictions agree with float predictions on most samples.
  ExecContext ctx;
  int agree = 0;
  for (std::size_t i = 0; i < data.images.size(); ++i) {
    agree += net.predict(data.images[i], ctx) == model.predict(data.images[i]);
  }
  EXPECT_GT(static_cast<double>(agree) / data.images.size(), 0.85);
}

}  // namespace
}  // namespace winofault
