// Cross-module integration: a miniature of the paper's full pipeline on a
// small VGG-style network — sweep, layer analysis, TMR planning, and
// voltage-scaled energy — asserting the paper's qualitative orderings
// end-to-end (the same invariants the benches report at full scale).
#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis/network_sweep.h"
#include "core/analysis/op_type.h"
#include "core/energy/voltage_explorer.h"
#include "core/protect/tmr_planner.h"
#include "nn/models/zoo.h"

namespace winofault {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Network* net = new Network("mini-vgg", DType::kInt16);
    Rng rng(61);
    // Realistic channel widths: Winograd's advantages (mul reduction on
    // the fault side, utilization on the systolic side) need non-trivial
    // channel counts, exactly as on real accelerators.
    int x = net->add_input(Shape{1, 3, 16, 16});
    x = net->add_conv(x, 24, 3, 1, 1, rng);
    x = net->add_conv(x, 24, 3, 1, 1, rng);
    x = net->add_maxpool(x, 2, 2);
    x = net->add_conv(x, 32, 3, 1, 1, rng);
    x = net->add_conv(x, 32, 3, 1, 1, rng);
    x = net->add_global_avgpool(x);
    x = net->add_flatten(x);
    x = net->add_linear(x, 8, rng);
    net->set_output(x);
    net->calibrate(make_images(net->input_shape(), 6, 8));
    net_ = net;
    data_ = new Dataset(make_teacher_dataset(*net, 48, 8, 0.9, 63));
    const OpSpace ops = net->total_op_space(ConvPolicy::kDirect);
    knee_ber_ = 25.0 / static_cast<double>(ops.total_bits());
  }
  static void TearDownTestSuite() {
    delete net_;
    delete data_;
  }

  static const Network* net_;
  static const Dataset* data_;
  static double knee_ber_;
};

const Network* PipelineTest::net_ = nullptr;
const Dataset* PipelineTest::data_ = nullptr;
double PipelineTest::knee_ber_ = 0;

TEST_F(PipelineTest, Fig2Shape_WinogradAtLeastAsAccurate) {
  SweepOptions options;
  options.bers = {knee_ber_};
  options.seed = 101;
  const double st = accuracy_sweep(*net_, *data_, options)[0].accuracy;
  options.policy = ConvPolicy::kWinograd2;
  const double wg = accuracy_sweep(*net_, *data_, options)[0].accuracy;
  EXPECT_GE(wg, st - 0.03);
}

TEST_F(PipelineTest, Fig4Shape_MulsDominateVulnerability) {
  OpTypeOptions options;
  options.ber = knee_ber_;
  options.seed = 103;
  const OpTypeResult result = op_type_sensitivity(*net_, *data_, options);
  EXPECT_GE(result.accuracy_mul_fault_free, result.accuracy_add_fault_free);
}

TEST_F(PipelineTest, Fig5Shape_AwarePlanningCutsOverhead) {
  LayerwiseOptions lw;
  lw.ber = knee_ber_;
  lw.seed = 105;
  const auto st_order =
      vulnerability_order(layer_vulnerability(*net_, *data_, lw));
  lw.policy = ConvPolicy::kWinograd2;
  const auto wg_order =
      vulnerability_order(layer_vulnerability(*net_, *data_, lw));

  TmrPlanOptions st_opts;
  st_opts.ber = knee_ber_;
  st_opts.accuracy_goal = 0.8;
  st_opts.step_fraction = 0.25;
  st_opts.seed = 107;
  st_opts.layer_order = &st_order;
  const TmrPlan st_plan = plan_tmr(*net_, *data_, st_opts);

  TmrPlanOptions wg_opts = st_opts;
  wg_opts.analysis_policy = ConvPolicy::kWinograd2;
  wg_opts.layer_order = &wg_order;
  const TmrPlan wg_plan = plan_tmr(*net_, *data_, wg_opts);

  const double st_ovh = plan_overhead_ops(*net_, st_plan, ConvPolicy::kDirect);
  const double wo_ovh =
      plan_overhead_ops(*net_, st_plan, ConvPolicy::kWinograd2);
  const double wa_ovh =
      plan_overhead_ops(*net_, wg_plan, ConvPolicy::kWinograd2);
  EXPECT_LE(wo_ovh, st_ovh);         // same plan costs less on Winograd
  // Awareness must not blow the budget (the precise 27% average reduction
  // is a statistical claim measured by bench/fig5 at larger sample sizes;
  // at this test's sample size plan sizes carry +-1-step noise).
  EXPECT_LE(wa_ovh, st_ovh);
  EXPECT_LE(wa_ovh, wo_ovh * 1.6);
  // The W/O-AFT plan still meets the goal when executed on Winograd
  // (Winograd is at least as fault-tolerant as direct).
  const double wo_acc = plan_accuracy(*net_, *data_, st_plan,
                                      ConvPolicy::kWinograd2, knee_ber_, 107);
  EXPECT_GE(wo_acc, 0.8 - 0.08);
}

TEST_F(PipelineTest, Fig7Shape_EnergyOrdering) {
  EnergyModel model;
  // Shift the cliff into this network's sensitivity range, and size the
  // array for this small model's channel counts.
  model.voltage.log10_ber_anchor = std::log10(knee_ber_) + 1.0;
  model.accel.rows = model.accel.cols = 8;
  ExplorerOptions options;
  options.loss_budgets = {0.05};
  options.voltage_grid = voltage_grid(0.86, 0.74, 7);
  options.seed = 109;
  const double e_st =
      explore_voltage_scaling(*net_, *data_, model, options)[0].energy_norm;
  options.exec_policy = ConvPolicy::kWinograd2;
  const double e_wo =
      explore_voltage_scaling(*net_, *data_, model, options)[0].energy_norm;
  options.curve_policy = ConvPolicy::kWinograd2;
  const double e_wa =
      explore_voltage_scaling(*net_, *data_, model, options)[0].energy_norm;
  EXPECT_LT(e_wo, e_st);
  EXPECT_LE(e_wa, e_wo + 1e-9);
  EXPECT_LE(e_st, 1.0 + 1e-9);
}

TEST_F(PipelineTest, Fig1Shape_NeuronLevelIsBlind) {
  SweepOptions options;
  options.bers = {knee_ber_ * 4};
  options.mode = InjectionMode::kNeuronLevel;
  options.seed = 111;
  const double st = accuracy_sweep(*net_, *data_, options)[0].accuracy;
  options.policy = ConvPolicy::kWinograd2;
  const double wg = accuracy_sweep(*net_, *data_, options)[0].accuracy;
  // Identical per-seed corruption => identical accuracy.
  EXPECT_DOUBLE_EQ(st, wg);
}

}  // namespace
}  // namespace winofault
