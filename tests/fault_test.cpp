// Unit tests for the fault substrate: bit-flip semantics, site sampling
// statistics, protection-set membership, and the neuron-level injector.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "fault/bitflip.h"
#include "fault/fault_model.h"
#include "fault/neuron_injector.h"
#include "fault/protection_set.h"
#include "fault/site_sampler.h"

namespace winofault {
namespace {

TEST(BitFlip, FlipBitXorSemantics) {
  EXPECT_EQ(flip_bit(0, 0, 8), 1);
  EXPECT_EQ(flip_bit(1, 0, 8), 0);
  EXPECT_EQ(flip_bit(0b1010, 2, 8), 0b1110);
  // Sign bit of an 8-bit register: 0 -> -128.
  EXPECT_EQ(flip_bit(0, 7, 8), -128);
  EXPECT_EQ(flip_bit(-128, 7, 8), 0);
  EXPECT_EQ(flip_bit(-1, 0, 8), -2);
}

TEST(BitFlip, FlipIsInvolution) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const int width = 8 + static_cast<int>(rng.next_below(40));
    const int bit = static_cast<int>(rng.next_below(width));
    const std::int64_t range = std::int64_t{1} << (width - 1);
    const std::int64_t v =
        static_cast<std::int64_t>(rng.next_below(2 * range)) - range;
    EXPECT_EQ(flip_bit(flip_bit(v, bit, width), bit, width), v);
  }
}

TEST(BitFlip, ApplyOpFaultMatchesXorForScaleOne) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const int bit = static_cast<int>(rng.next_below(24));
    const std::int64_t v =
        static_cast<std::int64_t>(rng.next_below(1 << 24)) - (1 << 23);
    EXPECT_EQ(apply_op_fault(v, bit, 1), flip_bit(v, bit, 32));
  }
}

TEST(BitFlip, ApplyOpFaultScaledDelta) {
  // In a scaled domain (Winograd S = 4), a bit-b flip moves the value by
  // 4 * 2^b, signed by the conceptual register's bit state.
  EXPECT_EQ(apply_op_fault(0, 3, 4), 32);
  EXPECT_EQ(apply_op_fault(100, 0, 4), 96);  // conceptual 25 has bit0 = 1
  EXPECT_EQ(apply_op_fault(96, 0, 4), 100);  // conceptual 24 has bit0 = 0
}

TEST(BitFlip, ApplyOpFaultIsInvolutionInScaledDomain) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t scale = trial % 2 ? 4 : 576;
    const int bit = static_cast<int>(rng.next_below(20));
    const std::int64_t v =
        static_cast<std::int64_t>(rng.next_below(1u << 30)) - (1 << 29);
    const std::int64_t once = apply_op_fault(v, bit, scale);
    EXPECT_EQ(std::llabs(once - v), (std::int64_t{1} << bit) * scale);
  }
}

TEST(FaultModel, SurfaceWidths) {
  EXPECT_EQ(FaultModel::mul_surface_bits(DType::kInt8), 16);
  EXPECT_EQ(FaultModel::mul_surface_bits(DType::kInt16), 32);
  EXPECT_EQ(FaultModel::add_surface_bits(DType::kInt8), 12);
  EXPECT_EQ(FaultModel::add_surface_bits(DType::kInt16), 20);
}

TEST(SiteSampler, CountsFollowBinomialMean) {
  OpSpace space;
  space.n_mul = 1'000'000;
  space.n_add = 2'000'000;
  space.mul_bits = 32;
  space.add_bits = 24;
  const double ber = 1e-7;
  SiteSampler sampler(FaultModel{ber});
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 3000; ++i)
    stats.add(static_cast<double>(sampler.sample(space, rng).size()));
  const double expected = ber * (1e6 * 32 + 2e6 * 24);  // = 8
  EXPECT_NEAR(stats.mean(), expected, 0.25);
}

TEST(SiteSampler, SitesWithinBounds) {
  OpSpace space;
  space.n_mul = 1000;
  space.n_add = 500;
  space.mul_bits = 32;
  space.add_bits = 24;
  SiteSampler sampler(FaultModel{1e-3});
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    for (const FaultSite& site : sampler.sample(space, rng)) {
      if (site.kind == OpKind::kMul) {
        EXPECT_LT(site.op_index, space.n_mul);
        EXPECT_LT(site.bit, space.mul_bits);
      } else {
        EXPECT_LT(site.op_index, space.n_add);
        EXPECT_LT(site.bit, space.add_bits);
      }
      EXPECT_GE(site.op_index, 0);
      EXPECT_GE(site.bit, 0);
    }
  }
}

TEST(SiteSampler, ZeroBerProducesNoSites) {
  OpSpace space{1000, 1000, 32, 24};
  SiteSampler sampler(FaultModel{0.0});
  Rng rng(17);
  EXPECT_TRUE(sampler.sample(space, rng).empty());
}

TEST(SiteSampler, KindRestrictedSampling) {
  OpSpace space{100000, 100000, 32, 24};
  SiteSampler sampler(FaultModel{1e-5});
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    for (const FaultSite& s : sampler.sample_kind(space, OpKind::kMul, rng))
      EXPECT_EQ(s.kind, OpKind::kMul);
    for (const FaultSite& s : sampler.sample_kind(space, OpKind::kAdd, rng))
      EXPECT_EQ(s.kind, OpKind::kAdd);
  }
}

TEST(SiteSampler, FullProtectionRemovesAllSites) {
  OpSpace space{100000, 100000, 32, 24};
  SiteSampler sampler(FaultModel{1e-4});
  ProtectionSet protection(1.0, 1.0);
  Rng rng(23);
  for (int i = 0; i < 20; ++i)
    EXPECT_TRUE(sampler.sample(space, rng, &protection).empty());
}

TEST(SiteSampler, PartialProtectionScalesSiteCount) {
  OpSpace space{4'000'000, 0, 32, 24};
  SiteSampler sampler(FaultModel{1e-7});
  ProtectionSet protection(0.75, 0.0);
  Rng rng(29);
  RunningStats with, without;
  for (int i = 0; i < 4000; ++i) {
    with.add(static_cast<double>(sampler.sample(space, rng, &protection).size()));
    without.add(static_cast<double>(sampler.sample(space, rng).size()));
  }
  // 75% mul protection keeps ~25% of mul faults.
  EXPECT_NEAR(with.mean() / without.mean(), 0.25, 0.035);
}

TEST(ProtectionSet, MembershipFractionIsAccurate) {
  for (const double fraction : {0.1, 0.5, 0.9}) {
    ProtectionSet set(fraction, 0.0);
    int covered = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) covered += set.covers(OpKind::kMul, i);
    EXPECT_NEAR(static_cast<double>(covered) / n, fraction, 0.01);
  }
}

TEST(ProtectionSet, GrowthIsMonotone) {
  // Raising the fraction must never un-protect an op (planner invariant).
  ProtectionSet small(0.3, 0.0);
  ProtectionSet large(0.6, 0.0);
  for (int i = 0; i < 50000; ++i) {
    if (small.covers(OpKind::kMul, i))
      EXPECT_TRUE(large.covers(OpKind::kMul, i)) << "op " << i;
  }
}

TEST(ProtectionSet, KindsAreIndependent) {
  ProtectionSet set(1.0, 0.0);
  EXPECT_TRUE(set.covers(OpKind::kMul, 123));
  EXPECT_FALSE(set.covers(OpKind::kAdd, 123));
}

TEST(ProtectionSet, OverheadAccounting) {
  OpSpace space;
  space.n_mul = 1000;
  space.n_add = 500;
  ProtectionSet set(0.5, 0.2);
  // 2 * (0.5*1000*1 + 0.2*500*1) = 1200.
  EXPECT_DOUBLE_EQ(set.overhead(space), 1200.0);
  // Weighted costs.
  EXPECT_DOUBLE_EQ(set.overhead(space, 1.0, 0.5), 2.0 * (500.0 + 50.0));
}

TEST(NeuronInjector, FlipCountMatchesBerAndStaysInRegister) {
  TensorI32 acts(Shape{1, 8, 16, 16});
  Rng fill(31);
  for (auto& v : acts.flat())
    v = static_cast<std::int32_t>(fill.next_below(256)) - 128;
  const TensorI32 original = acts;
  const double ber = 1e-3;
  NeuronInjector injector(ber, DType::kInt8);
  Rng rng(37);
  RunningStats stats;
  for (int i = 0; i < 300; ++i) {
    TensorI32 copy = original;
    stats.add(static_cast<double>(injector.inject(copy, rng)));
    for (std::int64_t j = 0; j < copy.numel(); ++j) {
      EXPECT_GE(copy[j], -128);
      EXPECT_LE(copy[j], 127);
    }
  }
  const double expected = ber * 8 * static_cast<double>(acts.numel());
  EXPECT_NEAR(stats.mean(), expected, expected * 0.15);
}

TEST(NeuronInjector, ZeroBerLeavesTensorUntouched) {
  TensorI32 acts(Shape{1, 2, 4, 4});
  acts.fill(7);
  NeuronInjector injector(0.0, DType::kInt16);
  Rng rng(41);
  EXPECT_EQ(injector.inject(acts, rng), 0);
  for (std::int64_t i = 0; i < acts.numel(); ++i) EXPECT_EQ(acts[i], 7);
}

}  // namespace
}  // namespace winofault
