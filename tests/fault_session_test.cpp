// Tests for the per-inference fault session: injection modes, layer
// exclusion, op-kind restriction, protection, and the Fig 1 property that
// neuron-level injection cannot distinguish conv algorithms while
// operation-level injection can.
#include <gtest/gtest.h>
#include <cstdlib>

#include "nn/dataset.h"
#include "nn/evaluator.h"
#include "nn/network.h"

namespace winofault {
namespace {

// This suite asserts the numeric semantics of the built-in flip@op
// injector (expected flip counts, degradation curves). Pin the built-in
// model so the registry-model CI leg (WINOFAULT_FAULT_MODEL) can run the
// full suite without changing what this file tests.
const bool kBuiltinModelPinned = [] {
  unsetenv("WINOFAULT_FAULT_MODEL");
  return true;
}();

Network small_net(DType dtype = DType::kInt16) {
  Network net("small", dtype);
  Rng rng(17);
  int x = net.add_input(Shape{1, 3, 16, 16});
  x = net.add_conv(x, 8, 3, 1, 1, rng);
  x = net.add_conv(x, 8, 3, 1, 1, rng);
  x = net.add_global_avgpool(x);
  x = net.add_flatten(x);
  x = net.add_linear(x, 4, rng);
  net.set_output(x);
  net.calibrate(make_images(net.input_shape(), 3, 5));
  return net;
}

TEST(FaultSession, ZeroBerIsIdentity) {
  const Network net = small_net();
  const auto images = make_images(net.input_shape(), 3, 21);
  for (const TensorF& image : images) {
    ExecContext clean_ctx;
    const TensorI32 clean = net.forward(image, clean_ctx);
    FaultConfig config;
    config.ber = 0.0;
    FaultSession session(config, 33);
    ExecContext ctx;
    ctx.session = &session;
    const TensorI32 out = net.forward(image, ctx);
    EXPECT_EQ(clean, out);
    EXPECT_EQ(session.total_flips(), 0);
  }
}

TEST(FaultSession, HighBerCorruptsOutputs) {
  const Network net = small_net();
  const auto images = make_images(net.input_shape(), 2, 22);
  FaultConfig config;
  config.ber = 1e-5;
  int corrupted = 0;
  for (const TensorF& image : images) {
    ExecContext clean_ctx;
    const TensorI32 clean = net.forward(image, clean_ctx);
    FaultSession session(config, 44);
    ExecContext ctx;
    ctx.session = &session;
    const TensorI32 out = net.forward(image, ctx);
    EXPECT_GT(session.total_flips(), 0);
    corrupted += !(clean == out);
  }
  EXPECT_GT(corrupted, 0);
}

TEST(FaultSession, SameSeedReproducesExactly) {
  const Network net = small_net();
  const auto images = make_images(net.input_shape(), 1, 23);
  FaultConfig config;
  config.ber = 1e-6;
  for (const ConvPolicy policy :
       {ConvPolicy::kDirect, ConvPolicy::kWinograd2}) {
    FaultSession s1(config, 777), s2(config, 777);
    ExecContext c1, c2;
    c1.policy = c2.policy = policy;
    c1.session = &s1;
    c2.session = &s2;
    const TensorI32 a = net.forward(images[0], c1);
    const TensorI32 b = net.forward(images[0], c2);
    EXPECT_EQ(a, b);
    EXPECT_EQ(s1.total_flips(), s2.total_flips());
  }
}

TEST(FaultSession, FaultFreeLayerIsExcluded) {
  const Network net = small_net();
  const auto images = make_images(net.input_shape(), 1, 24);
  // With every layer excluded one at a time at extreme BER, flips drop
  // relative to no exclusion.
  FaultConfig all;
  all.ber = 1e-5;
  FaultSession base(all, 55);
  ExecContext ctx_base;
  ctx_base.session = &base;
  net.forward(images[0], ctx_base);

  std::int64_t excluded_total = 0;
  for (int layer = 0; layer < net.num_protectable(); ++layer) {
    FaultConfig config = all;
    config.fault_free_layer = layer;
    FaultSession session(config, 55);
    ExecContext ctx;
    ctx.session = &session;
    net.forward(images[0], ctx);
    EXPECT_LE(session.total_flips(), base.total_flips());
    excluded_total += session.total_flips();
  }
  // Summed over all single-layer exclusions, (P-1) * base flips expected.
  EXPECT_LT(excluded_total, net.num_protectable() * base.total_flips());
}

TEST(FaultSession, OnlyKindRestriction) {
  const Network net = small_net();
  const auto images = make_images(net.input_shape(), 1, 25);
  FaultConfig mul_only;
  mul_only.ber = 1e-5;
  mul_only.only_kind = OpKind::kMul;
  FaultConfig add_only = mul_only;
  add_only.only_kind = OpKind::kAdd;
  FaultSession sm(mul_only, 66), sa(add_only, 66);
  ExecContext cm, ca;
  cm.session = &sm;
  ca.session = &sa;
  net.forward(images[0], cm);
  net.forward(images[0], ca);
  EXPECT_GT(sm.total_flips(), 0);
  EXPECT_GT(sa.total_flips(), 0);
}

TEST(FaultSession, FullProtectionRestoresCleanOutput) {
  const Network net = small_net();
  const auto images = make_images(net.input_shape(), 2, 26);
  FaultConfig config;
  config.ber = 1e-5;
  for (int p = 0; p < net.num_protectable(); ++p)
    config.protection.emplace(p, ProtectionSet(1.0, 1.0));
  for (const TensorF& image : images) {
    ExecContext clean_ctx;
    const TensorI32 clean = net.forward(image, clean_ctx);
    FaultSession session(config, 88);
    ExecContext ctx;
    ctx.session = &session;
    const TensorI32 out = net.forward(image, ctx);
    EXPECT_EQ(clean, out);
    EXPECT_EQ(session.total_flips(), 0);
  }
}

// The Fig 1 mechanism: neuron-level injection samples the *same* fault
// space for direct and Winograd execution (activation tensors are
// identical), so per-seed it corrupts identically; operation-level
// injection samples engine-specific op spaces and diverges.
TEST(FaultSession, NeuronLevelCannotDistinguishEngines) {
  const Network net = small_net();
  const auto images = make_images(net.input_shape(), 3, 27);
  FaultConfig config;
  config.ber = 1e-4;
  config.mode = InjectionMode::kNeuronLevel;
  for (const TensorF& image : images) {
    FaultSession s_direct(config, 99), s_wino(config, 99);
    ExecContext cd, cw;
    cd.policy = ConvPolicy::kDirect;
    cd.session = &s_direct;
    cw.policy = ConvPolicy::kWinograd2;
    cw.session = &s_wino;
    const TensorI32 a = net.forward(image, cd);
    const TensorI32 b = net.forward(image, cw);
    EXPECT_EQ(a, b) << "neuron-level FI must be blind to the conv algorithm";
  }
}

TEST(FaultSession, OpLevelSeesSmallerWinogradMulSpace) {
  const Network net = small_net();
  const OpSpace direct = net.total_op_space(ConvPolicy::kDirect);
  const OpSpace wino = net.total_op_space(ConvPolicy::kWinograd4);
  EXPECT_LT(wino.n_mul, direct.n_mul);
  // Expected flip counts scale with the op-bit space.
  FaultModel model{1e-6};
  EXPECT_LT(model.expected_flips(wino), model.expected_flips(direct));
}

}  // namespace
}  // namespace winofault
