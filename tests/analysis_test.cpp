// Tests for the analysis drivers: BER sweeps, layer-wise vulnerability, and
// operation-type sensitivity on a small conv network.
#include <gtest/gtest.h>
#include <cstdlib>

#include "core/analysis/layer_vulnerability.h"
#include "core/analysis/network_sweep.h"
#include "core/analysis/op_type.h"
#include "nn/models/zoo.h"

namespace winofault {
namespace {

// This suite asserts the numeric semantics of the built-in flip@op
// injector (expected flip counts, degradation curves). Pin the built-in
// model so the registry-model CI leg (WINOFAULT_FAULT_MODEL) can run the
// full suite without changing what this file tests.
const bool kBuiltinModelPinned = [] {
  unsetenv("WINOFAULT_FAULT_MODEL");
  return true;
}();

struct Fixture {
  Network net;
  Dataset data;
};

Fixture make_fixture() {
  Network net("analysis", DType::kInt16);
  Rng rng(41);
  int x = net.add_input(Shape{1, 3, 16, 16});
  x = net.add_conv(x, 10, 3, 1, 1, rng);
  x = net.add_conv(x, 10, 3, 1, 1, rng);
  x = net.add_conv(x, 10, 3, 1, 1, rng);
  x = net.add_global_avgpool(x);
  x = net.add_flatten(x);
  x = net.add_linear(x, 5, rng);
  net.set_output(x);
  net.calibrate(make_images(net.input_shape(), 6, 3));
  Dataset data = make_teacher_dataset(net, 80, 5, 1.0, 12);
  return Fixture{std::move(net), std::move(data)};
}

TEST(NetworkSweep, LogGridAndMonotoneTrend) {
  const auto grid = log_ber_grid(1e-9, 1e-5, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_NEAR(grid.front(), 1e-9, 1e-15);
  EXPECT_NEAR(grid.back(), 1e-5, 1e-10);
  EXPECT_NEAR(grid[1] / grid[0], 10.0, 1e-6);

  const Fixture f = make_fixture();
  SweepOptions options;
  options.bers = {1e-9, 1e-6, 3e-5};
  options.seed = 17;
  const auto points = accuracy_sweep(f.net, f.data, options);
  ASSERT_EQ(points.size(), 3u);
  // Negligible BER: clean accuracy; harsh BER: far below.
  EXPECT_GT(points[0].accuracy, 0.9);
  EXPECT_LT(points[2].accuracy, points[0].accuracy - 0.2);
  EXPECT_LT(points[0].avg_flips, points[2].avg_flips);
}

TEST(NetworkSweep, WinogradShiftsTheKnee) {
  const Fixture f = make_fixture();
  SweepOptions st;
  st.bers = {1e-6};
  st.seed = 23;
  SweepOptions wg = st;
  wg.policy = ConvPolicy::kWinograd2;
  const double acc_st = accuracy_sweep(f.net, f.data, st)[0].accuracy;
  const double acc_wg = accuracy_sweep(f.net, f.data, wg)[0].accuracy;
  EXPECT_GE(acc_wg, acc_st - 0.05)
      << "Winograd accuracy should not trail direct by more than noise";
}

TEST(LayerVulnerability, FactorsAreReportedPerLayer) {
  const Fixture f = make_fixture();
  LayerwiseOptions options;
  options.ber = 3e-6;
  options.seed = 29;
  const LayerwiseResult result = layer_vulnerability(f.net, f.data, options);
  ASSERT_EQ(result.layers.size(), 4u);  // 3 convs + linear
  EXPECT_GT(result.base_accuracy, 0.0);
  for (const LayerSensitivity& layer : result.layers) {
    // Keeping a layer fault-free can only help, modulo sampling noise.
    EXPECT_GE(layer.accuracy_fault_free, result.base_accuracy - 0.1);
    EXPECT_GT(layer.n_mul, 0);
    EXPECT_GT(layer.n_add, 0);
  }
  // Conv layers (iso-shape here) dominate the tiny linear head.
  const auto& linear = result.layers.back();
  const auto& conv2 = result.layers[1];
  EXPECT_GT(conv2.n_mul, linear.n_mul);
}

TEST(LayerVulnerability, ZeroBerGivesZeroVulnerability) {
  const Fixture f = make_fixture();
  LayerwiseOptions options;
  options.ber = 0.0;
  options.seed = 31;
  const LayerwiseResult result = layer_vulnerability(f.net, f.data, options);
  for (const LayerSensitivity& layer : result.layers) {
    EXPECT_DOUBLE_EQ(layer.vulnerability, 0.0);
  }
}

TEST(OpType, MulsAreMoreVulnerableThanAdds) {
  const Fixture f = make_fixture();
  OpTypeOptions options;
  options.ber = 2e-6;
  options.seed = 37;
  for (const ConvPolicy policy :
       {ConvPolicy::kDirect, ConvPolicy::kWinograd2}) {
    options.policy = policy;
    const OpTypeResult result = op_type_sensitivity(f.net, f.data, options);
    // Removing mul faults recovers at least as much accuracy as removing
    // add faults: the paper's Fig 4 ordering.
    EXPECT_GE(result.accuracy_mul_fault_free,
              result.accuracy_add_fault_free - 0.03)
        << conv_policy_name(policy);
    // Both restricted runs dominate the all-faulty baseline.
    EXPECT_GE(result.accuracy_mul_fault_free,
              result.accuracy_all_faulty - 0.03);
    EXPECT_GE(result.accuracy_add_fault_free,
              result.accuracy_all_faulty - 0.03);
  }
}

}  // namespace
}  // namespace winofault
