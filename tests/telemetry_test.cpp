// Telemetry registry + trace-span guarantees (common/telemetry):
//   (a) counter/gauge/histogram aggregation is exact under the
//       work-stealing pool — relaxed atomics lose nothing;
//   (b) get-or-create returns stable references: the same (name, labels)
//       pair is the same series, different labels are different series,
//       and reset_for_test() zeroes values without invalidating anything;
//   (c) prometheus_text() renders well-formed exposition: HELP/TYPE per
//       name, histogram _bucket/_sum/_count with monotone cumulative
//       counts;
//   (d) trace files are valid JSON (parsed with the service protocol's
//       parser) whose events carry name/ph/ts/dur, and tracing toggled
//       on/off never touches metric values.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/parallel.h"
#include "common/telemetry/telemetry.h"
#include "core/service/protocol.h"

namespace winofault {
namespace {

namespace fs = std::filesystem;

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override { telemetry::reset_for_test(); }
  void TearDown() override {
    telemetry::set_trace_path("");  // stop tracing between tests
    telemetry::reset_for_test();
  }
};

TEST_F(TelemetryTest, CounterExactUnderPool) {
  telemetry::Counter& c =
      telemetry::counter("test_pool_adds_total", "test counter");
  constexpr std::int64_t kN = 100000;
  parallel_for(kN, 4, [&](std::int64_t) { c.add(1); });
  EXPECT_EQ(c.value(), kN);
}

TEST_F(TelemetryTest, HistogramExactUnderPool) {
  telemetry::Histogram& h =
      telemetry::histogram("test_pool_obs_us", "test histogram");
  constexpr std::int64_t kN = 50000;
  // Observation i contributes i: count and sum must both be exact.
  parallel_for(kN, 4, [&](std::int64_t i) { h.observe(i); });
  EXPECT_EQ(h.count(), kN);
  EXPECT_EQ(h.sum(), kN * (kN - 1) / 2);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(kN - 1) / 2.0);
  // Cumulative bucket counts are monotone and end at count().
  std::int64_t prev = 0;
  for (int b = 0; b < telemetry::Histogram::kBuckets; ++b) {
    const std::int64_t cum = h.cumulative(b);
    EXPECT_GE(cum, prev);
    prev = cum;
  }
  EXPECT_EQ(prev, kN);
}

TEST_F(TelemetryTest, GaugeSetAndAdd) {
  telemetry::Gauge& g = telemetry::gauge("test_gauge", "test gauge");
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-2);
  EXPECT_EQ(g.value(), 40);
  g.set(7);
  EXPECT_EQ(g.value(), 7);
}

TEST_F(TelemetryTest, SameSeriesSameReferenceDistinctLabelsDistinct) {
  telemetry::Counter& a =
      telemetry::counter("test_labeled_total", "help", "k=\"a\"");
  telemetry::Counter& a2 =
      telemetry::counter("test_labeled_total", "help", "k=\"a\"");
  telemetry::Counter& b =
      telemetry::counter("test_labeled_total", "help", "k=\"b\"");
  EXPECT_EQ(&a, &a2);
  EXPECT_NE(&a, &b);
  a.add(3);
  b.add(5);
  EXPECT_EQ(a2.value(), 3);
  EXPECT_EQ(b.value(), 5);
}

TEST_F(TelemetryTest, ResetZeroesValuesKeepsReferences) {
  telemetry::Counter& c = telemetry::counter("test_reset_total", "help");
  telemetry::Gauge& g = telemetry::gauge("test_reset_gauge", "help");
  telemetry::Histogram& h = telemetry::histogram("test_reset_us", "help");
  c.add(9);
  g.set(9);
  h.observe(9);
  telemetry::reset_for_test();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  // The references survive the reset: the next event lands in the same
  // series (this is what makes function-local static caching safe in
  // long-lived test processes).
  c.add(2);
  EXPECT_EQ(c.value(), 2);
  EXPECT_EQ(telemetry::counter("test_reset_total", "help").value(), 2);
}

TEST_F(TelemetryTest, PrometheusTextWellFormed) {
  telemetry::counter("test_expo_total", "a test counter", "k=\"a\"").add(2);
  telemetry::counter("test_expo_total", "a test counter", "k=\"b\"").add(3);
  telemetry::gauge("test_expo_gauge", "a test gauge").set(-4);
  telemetry::Histogram& h =
      telemetry::histogram("test_expo_us", "a test histogram");
  h.observe(1);
  h.observe(100);
  const std::string text = telemetry::prometheus_text();

  EXPECT_NE(text.find("# HELP test_expo_total a test counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_expo_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_expo_total{k=\"a\"} 2"), std::string::npos);
  EXPECT_NE(text.find("test_expo_total{k=\"b\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_expo_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("test_expo_gauge -4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_expo_us histogram"), std::string::npos);
  EXPECT_NE(text.find("test_expo_us_sum 101"), std::string::npos);
  EXPECT_NE(text.find("test_expo_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos);
  // One HELP line per metric name, not per series.
  std::size_t helps = 0;
  for (std::size_t at = text.find("# HELP test_expo_total");
       at != std::string::npos;
       at = text.find("# HELP test_expo_total", at + 1)) {
    ++helps;
  }
  EXPECT_EQ(helps, 1u);
}

TEST_F(TelemetryTest, TraceFileIsValidJsonWithCompleteEvents) {
  const std::string path =
      ::testing::TempDir() + "winofault_telemetry_trace.json";
  fs::remove(path);
  telemetry::set_trace_path(path);
  EXPECT_TRUE(telemetry::tracing_enabled());
  {
    telemetry::TraceSpan outer("outer_span", "test");
    telemetry::TraceSpan inner("inner_span", "test");
  }
  parallel_for(8, 2, [&](std::int64_t) {
    telemetry::TraceSpan span("pooled_span", "test");
  });
  telemetry::flush_trace();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::optional<Json> doc = Json::parse(buffer.str());
  ASSERT_TRUE(doc.has_value());
  const Json* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  const std::vector<Json>& items = events->elements();
  ASSERT_GE(items.size(), 10u);  // 2 scoped + 8 pooled
  std::size_t outer_seen = 0, pooled_seen = 0;
  for (const Json& event : items) {
    const Json* name = event.find("name");
    const Json* ph = event.find("ph");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->as_string(), "X");
    EXPECT_NE(event.find("ts"), nullptr);
    EXPECT_NE(event.find("dur"), nullptr);
    EXPECT_NE(event.find("tid"), nullptr);
    if (name->as_string() == "outer_span") ++outer_seen;
    if (name->as_string() == "pooled_span") ++pooled_seen;
  }
  EXPECT_EQ(outer_seen, 1u);
  EXPECT_EQ(pooled_seen, 8u);
  telemetry::set_trace_path("");
  fs::remove(path);
}

TEST_F(TelemetryTest, HistogramQuantilesInterpolateWithinBuckets) {
  telemetry::Histogram& h =
      telemetry::histogram("test_quantile_us", "a test histogram");
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty histogram
  // 100 identical observations of 10 land in the (8, 16] bucket: every
  // quantile must interpolate inside that bucket, never outside it.
  for (int i = 0; i < 100; ++i) h.observe(10);
  for (const double q : {0.5, 0.95, 0.99}) {
    EXPECT_GT(h.quantile(q), 8.0) << "q=" << q;
    EXPECT_LE(h.quantile(q), 16.0) << "q=" << q;
  }
  // A spread distribution keeps quantiles monotone in q.
  telemetry::Histogram& spread =
      telemetry::histogram("test_quantile_spread_us", "a test histogram");
  for (int i = 1; i <= 1000; ++i) spread.observe(i);
  const double p50 = spread.quantile(0.50);
  const double p95 = spread.quantile(0.95);
  const double p99 = spread.quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // p50 of 1..1000 is ~500; the log2 bucket holding it is (256, 512].
  EXPECT_GT(p50, 256.0);
  EXPECT_LE(p50, 512.0);
  EXPECT_GT(p99, 512.0);
}

TEST_F(TelemetryTest, PrometheusTextCarriesQuantileLines) {
  telemetry::Histogram& h =
      telemetry::histogram("test_expo_q_us", "a test histogram");
  for (int i = 0; i < 10; ++i) h.observe(100);
  const std::string text = telemetry::prometheus_text();
  EXPECT_NE(text.find("test_expo_q_us_p50 "), std::string::npos);
  EXPECT_NE(text.find("test_expo_q_us_p95 "), std::string::npos);
  EXPECT_NE(text.find("test_expo_q_us_p99 "), std::string::npos);
}

TEST_F(TelemetryTest, SnapshotCapturesEverySeriesWithSummaries) {
  telemetry::counter("test_snap_total", "help").add(7);
  telemetry::gauge("test_snap_gauge", "help").set(-3);
  telemetry::Histogram& h = telemetry::histogram("test_snap_us", "help");
  h.observe(4);
  h.observe(6);
  const std::vector<telemetry::SeriesSample> series = telemetry::snapshot();
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const telemetry::SeriesSample& s : series) {
    if (s.name == "test_snap_total") {
      saw_counter = true;
      EXPECT_EQ(s.type, 'c');
      EXPECT_EQ(s.value, 7);
    } else if (s.name == "test_snap_gauge") {
      saw_gauge = true;
      EXPECT_EQ(s.type, 'g');
      EXPECT_EQ(s.value, -3);
    } else if (s.name == "test_snap_us") {
      saw_hist = true;
      EXPECT_EQ(s.type, 'h');
      EXPECT_EQ(s.value, 2);  // histogram count rides in `value`
      EXPECT_EQ(s.sum, 10);
      EXPECT_LE(s.p50, s.p95);
      EXPECT_LE(s.p95, s.p99);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);
}

TEST_F(TelemetryTest, IncrementalFlushAppendsAndStaysValidJson) {
  const std::string path =
      ::testing::TempDir() + "winofault_telemetry_incremental.json";
  fs::remove(path);
  telemetry::set_trace_path(path);
  const auto parse_events = [&]() -> std::size_t {
    std::ifstream in(path);
    EXPECT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::optional<Json> doc = Json::parse(buffer.str());
    EXPECT_TRUE(doc.has_value());
    if (!doc.has_value()) return 0;
    const Json* events = doc->find("traceEvents");
    EXPECT_NE(events, nullptr);
    return events != nullptr ? events->elements().size() : 0;
  };
  // Each flush appends only the new events and re-closes the document:
  // the file is valid JSON after every flush and never shrinks a
  // previously flushed event away. (A fresh sink path replays the full
  // per-thread history, so earlier tests' spans may be present — the
  // checks are relative to the first flush.)
  { telemetry::TraceSpan span("first_span", "test"); }
  telemetry::flush_trace();
  const std::size_t base = parse_events();
  EXPECT_GE(base, 1u);
  { telemetry::TraceSpan span("second_span", "test"); }
  { telemetry::TraceSpan span("third_span", "test"); }
  telemetry::flush_trace();
  EXPECT_EQ(parse_events(), base + 2);
  // A flush with nothing new keeps the document intact.
  telemetry::flush_trace();
  EXPECT_EQ(parse_events(), base + 2);
  telemetry::set_trace_path("");
  fs::remove(path);
}

TEST_F(TelemetryTest, TracingToggleNeverTouchesMetrics) {
  telemetry::Counter& c = telemetry::counter("test_toggle_total", "help");
  c.add(1);
  const std::string path =
      ::testing::TempDir() + "winofault_telemetry_toggle.json";
  telemetry::set_trace_path(path);
  { telemetry::TraceSpan span("toggle_span", "test"); }
  telemetry::set_trace_path("");
  { telemetry::TraceSpan span("untraced_span", "test"); }
  EXPECT_FALSE(telemetry::tracing_enabled());
  EXPECT_EQ(c.value(), 1);
  fs::remove(path);
}

}  // namespace
}  // namespace winofault
