// Telemetry registry + trace-span guarantees (common/telemetry):
//   (a) counter/gauge/histogram aggregation is exact under the
//       work-stealing pool — relaxed atomics lose nothing;
//   (b) get-or-create returns stable references: the same (name, labels)
//       pair is the same series, different labels are different series,
//       and reset_for_test() zeroes values without invalidating anything;
//   (c) prometheus_text() renders well-formed exposition: HELP/TYPE per
//       name, histogram _bucket/_sum/_count with monotone cumulative
//       counts;
//   (d) trace files are valid JSON (parsed with the service protocol's
//       parser) whose events carry name/ph/ts/dur, and tracing toggled
//       on/off never touches metric values.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/parallel.h"
#include "common/telemetry/telemetry.h"
#include "core/service/protocol.h"

namespace winofault {
namespace {

namespace fs = std::filesystem;

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override { telemetry::reset_for_test(); }
  void TearDown() override {
    telemetry::set_trace_path("");  // stop tracing between tests
    telemetry::reset_for_test();
  }
};

TEST_F(TelemetryTest, CounterExactUnderPool) {
  telemetry::Counter& c =
      telemetry::counter("test_pool_adds_total", "test counter");
  constexpr std::int64_t kN = 100000;
  parallel_for(kN, 4, [&](std::int64_t) { c.add(1); });
  EXPECT_EQ(c.value(), kN);
}

TEST_F(TelemetryTest, HistogramExactUnderPool) {
  telemetry::Histogram& h =
      telemetry::histogram("test_pool_obs_us", "test histogram");
  constexpr std::int64_t kN = 50000;
  // Observation i contributes i: count and sum must both be exact.
  parallel_for(kN, 4, [&](std::int64_t i) { h.observe(i); });
  EXPECT_EQ(h.count(), kN);
  EXPECT_EQ(h.sum(), kN * (kN - 1) / 2);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(kN - 1) / 2.0);
  // Cumulative bucket counts are monotone and end at count().
  std::int64_t prev = 0;
  for (int b = 0; b < telemetry::Histogram::kBuckets; ++b) {
    const std::int64_t cum = h.cumulative(b);
    EXPECT_GE(cum, prev);
    prev = cum;
  }
  EXPECT_EQ(prev, kN);
}

TEST_F(TelemetryTest, GaugeSetAndAdd) {
  telemetry::Gauge& g = telemetry::gauge("test_gauge", "test gauge");
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-2);
  EXPECT_EQ(g.value(), 40);
  g.set(7);
  EXPECT_EQ(g.value(), 7);
}

TEST_F(TelemetryTest, SameSeriesSameReferenceDistinctLabelsDistinct) {
  telemetry::Counter& a =
      telemetry::counter("test_labeled_total", "help", "k=\"a\"");
  telemetry::Counter& a2 =
      telemetry::counter("test_labeled_total", "help", "k=\"a\"");
  telemetry::Counter& b =
      telemetry::counter("test_labeled_total", "help", "k=\"b\"");
  EXPECT_EQ(&a, &a2);
  EXPECT_NE(&a, &b);
  a.add(3);
  b.add(5);
  EXPECT_EQ(a2.value(), 3);
  EXPECT_EQ(b.value(), 5);
}

TEST_F(TelemetryTest, ResetZeroesValuesKeepsReferences) {
  telemetry::Counter& c = telemetry::counter("test_reset_total", "help");
  telemetry::Gauge& g = telemetry::gauge("test_reset_gauge", "help");
  telemetry::Histogram& h = telemetry::histogram("test_reset_us", "help");
  c.add(9);
  g.set(9);
  h.observe(9);
  telemetry::reset_for_test();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  // The references survive the reset: the next event lands in the same
  // series (this is what makes function-local static caching safe in
  // long-lived test processes).
  c.add(2);
  EXPECT_EQ(c.value(), 2);
  EXPECT_EQ(telemetry::counter("test_reset_total", "help").value(), 2);
}

TEST_F(TelemetryTest, PrometheusTextWellFormed) {
  telemetry::counter("test_expo_total", "a test counter", "k=\"a\"").add(2);
  telemetry::counter("test_expo_total", "a test counter", "k=\"b\"").add(3);
  telemetry::gauge("test_expo_gauge", "a test gauge").set(-4);
  telemetry::Histogram& h =
      telemetry::histogram("test_expo_us", "a test histogram");
  h.observe(1);
  h.observe(100);
  const std::string text = telemetry::prometheus_text();

  EXPECT_NE(text.find("# HELP test_expo_total a test counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_expo_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_expo_total{k=\"a\"} 2"), std::string::npos);
  EXPECT_NE(text.find("test_expo_total{k=\"b\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_expo_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("test_expo_gauge -4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_expo_us histogram"), std::string::npos);
  EXPECT_NE(text.find("test_expo_us_sum 101"), std::string::npos);
  EXPECT_NE(text.find("test_expo_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos);
  // One HELP line per metric name, not per series.
  std::size_t helps = 0;
  for (std::size_t at = text.find("# HELP test_expo_total");
       at != std::string::npos;
       at = text.find("# HELP test_expo_total", at + 1)) {
    ++helps;
  }
  EXPECT_EQ(helps, 1u);
}

TEST_F(TelemetryTest, TraceFileIsValidJsonWithCompleteEvents) {
  const std::string path =
      ::testing::TempDir() + "winofault_telemetry_trace.json";
  fs::remove(path);
  telemetry::set_trace_path(path);
  EXPECT_TRUE(telemetry::tracing_enabled());
  {
    telemetry::TraceSpan outer("outer_span", "test");
    telemetry::TraceSpan inner("inner_span", "test");
  }
  parallel_for(8, 2, [&](std::int64_t) {
    telemetry::TraceSpan span("pooled_span", "test");
  });
  telemetry::flush_trace();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::optional<Json> doc = Json::parse(buffer.str());
  ASSERT_TRUE(doc.has_value());
  const Json* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  const std::vector<Json>& items = events->elements();
  ASSERT_GE(items.size(), 10u);  // 2 scoped + 8 pooled
  std::size_t outer_seen = 0, pooled_seen = 0;
  for (const Json& event : items) {
    const Json* name = event.find("name");
    const Json* ph = event.find("ph");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->as_string(), "X");
    EXPECT_NE(event.find("ts"), nullptr);
    EXPECT_NE(event.find("dur"), nullptr);
    EXPECT_NE(event.find("tid"), nullptr);
    if (name->as_string() == "outer_span") ++outer_seen;
    if (name->as_string() == "pooled_span") ++pooled_seen;
  }
  EXPECT_EQ(outer_seen, 1u);
  EXPECT_EQ(pooled_seen, 8u);
  telemetry::set_trace_path("");
  fs::remove(path);
}

TEST_F(TelemetryTest, TracingToggleNeverTouchesMetrics) {
  telemetry::Counter& c = telemetry::counter("test_toggle_total", "help");
  c.add(1);
  const std::string path =
      ::testing::TempDir() + "winofault_telemetry_toggle.json";
  telemetry::set_trace_path(path);
  { telemetry::TraceSpan span("toggle_span", "test"); }
  telemetry::set_trace_path("");
  { telemetry::TraceSpan span("untraced_span", "test"); }
  EXPECT_FALSE(telemetry::tracing_enabled());
  EXPECT_EQ(c.value(), 1);
  fs::remove(path);
}

}  // namespace
}  // namespace winofault
