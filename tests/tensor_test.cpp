// Unit tests for tensors, shapes, and the symmetric quantization scheme.
#include <gtest/gtest.h>

#include "tensor/quantize.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace winofault {
namespace {

TEST(Shape, NumelAndIndexing) {
  const Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.numel(), 120);
  EXPECT_EQ(s.index(0, 0, 0, 0), 0);
  EXPECT_EQ(s.index(0, 0, 0, 1), 1);
  EXPECT_EQ(s.index(0, 0, 1, 0), 5);
  EXPECT_EQ(s.index(0, 1, 0, 0), 20);
  EXPECT_EQ(s.index(1, 0, 0, 0), 60);
  EXPECT_EQ(s.index(1, 2, 3, 4), 119);
}

TEST(Shape, ConvOutDim) {
  EXPECT_EQ(conv_out_dim(32, 3, 1, 1), 32);  // same padding
  EXPECT_EQ(conv_out_dim(32, 3, 1, 0), 30);  // valid
  EXPECT_EQ(conv_out_dim(32, 3, 2, 1), 16);
  EXPECT_EQ(conv_out_dim(32, 1, 1, 0), 32);  // pointwise
  EXPECT_EQ(conv_out_dim(32, 2, 2, 0), 16);  // pooling window
}

TEST(Tensor, ZeroInitializedAndMutable) {
  TensorI32 t(Shape{1, 2, 3, 3});
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0);
  t.at(0, 1, 2, 2) = 17;
  EXPECT_EQ(t[t.shape().index(0, 1, 2, 2)], 17);
}

TEST(DTypeTraits, RangesAndClamp) {
  EXPECT_EQ(bit_width(DType::kInt8), 8);
  EXPECT_EQ(bit_width(DType::kInt16), 16);
  EXPECT_EQ(clamp_to(DType::kInt8, 1000), 127);
  EXPECT_EQ(clamp_to(DType::kInt8, -1000), -128);
  EXPECT_EQ(clamp_to(DType::kInt8, 5), 5);
  EXPECT_EQ(clamp_to(DType::kInt16, 40000), 32767);
  EXPECT_EQ(clamp_to(DType::kInt16, -40000), -32768);
}

TEST(Quantize, RoundTripWithinHalfStep) {
  TensorF real(Shape{1, 1, 4, 4});
  float v = -2.0f;
  for (auto& x : real.flat()) {
    x = v;
    v += 0.25f;
  }
  for (const DType dtype : {DType::kInt8, DType::kInt16}) {
    const QuantParams q = choose_quant_params(real, dtype);
    const TensorI32 stored = quantize(real, q);
    const TensorF back = dequantize(stored, q);
    for (std::int64_t i = 0; i < real.numel(); ++i) {
      EXPECT_NEAR(back[i], real[i], q.scale * 0.51) << dtype_name(dtype);
    }
  }
}

TEST(Quantize, FullRangeUsesExtremes) {
  TensorF real(Shape{1, 1, 1, 2});
  real[0] = 1.0f;
  real[1] = -1.0f;
  const QuantParams q = choose_quant_params(real, DType::kInt8);
  const TensorI32 stored = quantize(real, q);
  EXPECT_EQ(stored[0], 127);
  EXPECT_EQ(stored[1], -127);
}

TEST(Quantize, AllZeroTensorHasFiniteScale) {
  TensorF real(Shape{1, 1, 2, 2});
  const QuantParams q = choose_quant_params(real, DType::kInt16);
  EXPECT_GT(q.scale, 0.0);
  const TensorI32 stored = quantize(real, q);
  for (std::int64_t i = 0; i < stored.numel(); ++i) EXPECT_EQ(stored[i], 0);
}

TEST(Requantize, RoundsAndSaturates) {
  QuantParams out;
  out.dtype = DType::kInt8;
  out.scale = 0.5;  // one output step = 0.5 real units
  // acc 10 at acc_scale 0.1 -> real 1.0 -> 2 steps.
  EXPECT_EQ(requantize_value(10, 0.1, out), 2);
  // Rounding: real 0.26 -> 0.52 steps -> 1.
  EXPECT_EQ(requantize_value(26, 0.01, out), 1);
  // Saturation both ways.
  EXPECT_EQ(requantize_value(1'000'000, 1.0, out), 127);
  EXPECT_EQ(requantize_value(-1'000'000, 1.0, out), -128);
}

TEST(Requantize, Int16MidRangeExact) {
  QuantParams out;
  out.dtype = DType::kInt16;
  out.scale = 1.0;
  EXPECT_EQ(requantize_value(12345, 1.0, out), 12345);
  EXPECT_EQ(requantize_value(-12345, 1.0, out), -12345);
}

}  // namespace
}  // namespace winofault
