// Shared helpers for the test suites: random quantized conv problems and
// tensor comparison utilities.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "conv/conv_desc.h"
#include "tensor/quantize.h"
#include "tensor/tensor.h"

namespace winofault::testing {

// Owning bundle behind a ConvData (which only holds pointers).
struct ConvProblem {
  ConvDesc desc;
  TensorI32 input;
  TensorI32 weights;
  std::vector<std::int64_t> bias;
  double acc_scale = 1.0;
  QuantParams out_quant;
  DType dtype = DType::kInt16;

  ConvData data() const {
    ConvData d;
    d.input = &input;
    d.weights = &weights;
    d.bias = desc.has_bias ? &bias : nullptr;
    d.dtype = dtype;
    d.acc_scale = acc_scale;
    d.out_quant = out_quant;
    return d;
  }
};

// Random problem with values spanning the dtype's range (stress-tests the
// integer transforms) and a requantization that keeps most outputs
// unsaturated.
inline ConvProblem make_problem(Rng& rng, const ConvDesc& desc,
                                DType dtype = DType::kInt16) {
  ConvProblem p;
  p.desc = desc;
  p.dtype = dtype;
  p.input = TensorI32(desc.in_shape());
  p.weights = TensorI32(desc.weight_shape());
  const std::int64_t lo = dtype_min(dtype), hi = dtype_max(dtype);
  for (auto& v : p.input.flat())
    v = static_cast<std::int32_t>(
        lo + static_cast<std::int64_t>(rng.next_below(
                 static_cast<std::uint64_t>(hi - lo + 1))));
  for (auto& v : p.weights.flat())
    v = static_cast<std::int32_t>(
        lo + static_cast<std::int64_t>(rng.next_below(
                 static_cast<std::uint64_t>(hi - lo + 1))));
  p.bias.resize(static_cast<std::size_t>(desc.out_c));
  for (auto& b : p.bias)
    b = static_cast<std::int64_t>(rng.next_below(20001)) - 10000;
  p.acc_scale = 1.0 / 4096.0;
  p.out_quant.dtype = dtype;
  // Scale so a typical accumulator lands mid-range.
  const double acc_mag = std::sqrt(static_cast<double>(desc.in_c * 9)) *
                         static_cast<double>(hi) * static_cast<double>(hi) *
                         0.5;
  p.out_quant.scale = acc_mag * p.acc_scale / static_cast<double>(hi);
  return p;
}

inline void expect_tensors_equal(const TensorI32& a, const TensorI32& b,
                                 const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " differs at flat index " << i;
  }
}

inline std::int64_t count_diffs(const TensorI32& a, const TensorI32& b) {
  std::int64_t diffs = 0;
  for (std::int64_t i = 0; i < a.numel(); ++i) diffs += a[i] != b[i];
  return diffs;
}

}  // namespace winofault::testing
