// Equivalence proofs for index-propagating sparse replay: forward_replay
// with the sparse paths enabled (changed-index sets flowing through relu /
// pool / eltwise / concat, and conv patching via replay_delta) must be
// bit-identical to BOTH the dense-recompute replay (sparse disabled) and a
// scratch forward with the same fault session — on graphs where the dirty
// cone crosses pooling, residual Adds, and channel-concatenations.
#include <gtest/gtest.h>

#include <vector>
#include <cstdlib>

#include "nn/dataset.h"
#include "nn/evaluator.h"
#include "nn/network.h"
#include "test_util.h"

namespace winofault {
namespace {

// This suite asserts the numeric semantics of the built-in flip@op
// injector (expected flip counts, degradation curves). Pin the built-in
// model so the registry-model CI leg (WINOFAULT_FAULT_MODEL) can run the
// full suite without changing what this file tests.
const bool kBuiltinModelPinned = [] {
  unsetenv("WINOFAULT_FAULT_MODEL");
  return true;
}();

using testing::expect_tensors_equal;

// Restores the process-wide default even when an assertion bails out of a
// test mid-loop.
struct SparseGuard {
  ~SparseGuard() { set_sparse_replay_enabled(true); }
};

// Residual graph: the cone from the trunk conv reaches the Add through two
// paths of different depth, and pooling shrinks the index sets downstream.
Network eltwise_net() {
  Network net("sparse-eltwise", DType::kInt16);
  Rng rng(171);
  int x = net.add_input(Shape{1, 3, 12, 12});
  x = net.add_conv(x, 8, 3, 1, 1, rng);
  const int trunk = net.add_conv(x, 8, 3, 1, 1, rng);
  const int branch = net.add_conv(trunk, 8, 3, 1, 1, rng);
  x = net.add_add(trunk, branch);
  x = net.add_maxpool(x, 2, 2);
  x = net.add_conv(x, 12, 3, 1, 1, rng);
  x = net.add_global_avgpool(x);
  x = net.add_flatten(x);
  x = net.add_linear(x, 5, rng);
  net.set_output(x);
  net.calibrate(make_images(net.input_shape(), 3, 18));
  return net;
}

// Concat graph: two conv branches of different widths merge channel-wise,
// so a dirty cone entering from branch B must re-base its indices by A's
// channel count — the concat edge case the index propagation must get
// right. Branch convs are most of the protectable layers, so nearly every
// faulted trial drives a cone across the concat.
Network concat_net() {
  Network net("sparse-concat", DType::kInt16);
  Rng rng(173);
  int x = net.add_input(Shape{1, 3, 12, 12});
  const int stem = net.add_conv(x, 6, 3, 1, 1, rng);
  const int a = net.add_conv(stem, 4, 3, 1, 1, rng);
  const int b = net.add_conv(stem, 6, 5, 1, 2, rng);
  x = net.add_concat({a, b});
  x = net.add_conv(x, 10, 3, 1, 1, rng);
  x = net.add_avgpool(x, 2, 2);
  x = net.add_global_avgpool(x);
  x = net.add_flatten(x);
  x = net.add_linear(x, 5, rng);
  net.set_output(x);
  net.calibrate(make_images(net.input_shape(), 3, 19));
  return net;
}

// Pool-heavy graph: max, avg, and global-avg pooling back to back, with
// padding so window marking must respect edge clamping.
Network pool_net() {
  Network net("sparse-pool", DType::kInt16);
  Rng rng(177);
  int x = net.add_input(Shape{1, 3, 16, 16});
  x = net.add_conv(x, 8, 3, 1, 1, rng);
  x = net.add_maxpool(x, 3, 2, 1);
  x = net.add_conv(x, 12, 3, 1, 1, rng);
  x = net.add_avgpool(x, 2, 2);
  x = net.add_conv(x, 12, 3, 1, 1, rng);
  x = net.add_global_avgpool(x);
  x = net.add_flatten(x);
  x = net.add_linear(x, 5, rng);
  net.set_output(x);
  net.calibrate(make_images(net.input_shape(), 3, 20));
  return net;
}

// For each (policy, image, seed): scratch forward, dense replay (sparse
// disabled), and sparse replay must all be bit-identical with identical
// flip accounting. Returns how many trials actually flipped bits, so
// callers can assert the sweep wasn't vacuously fault-free.
int check_sparse_dense_scratch(const Network& net, const FaultConfig& config,
                               int seeds, const char* what) {
  SparseGuard guard;
  int faulted_trials = 0;
  const std::vector<TensorF> images = make_images(net.input_shape(), 2, 91);
  for (const ConvPolicy policy :
       {ConvPolicy::kDirect, ConvPolicy::kWinograd2, ConvPolicy::kWinograd4}) {
    for (const TensorF& image : images) {
      const GoldenCache golden = net.make_golden(image, policy);
      for (int seed = 1; seed <= seeds; ++seed) {
        FaultSession scratch_session(config, static_cast<std::uint64_t>(seed));
        ExecContext ctx;
        ctx.policy = policy;
        ctx.session = &scratch_session;
        const TensorI32 scratch = net.forward(image, ctx);

        set_sparse_replay_enabled(false);
        FaultSession dense_session(config, static_cast<std::uint64_t>(seed));
        const TensorI32 dense = net.forward_replay(golden, dense_session);

        set_sparse_replay_enabled(true);
        FaultSession sparse_session(config, static_cast<std::uint64_t>(seed));
        const TensorI32 sparse = net.forward_replay(golden, sparse_session);

        expect_tensors_equal(scratch, dense, what);
        expect_tensors_equal(dense, sparse, what);
        EXPECT_EQ(dense_session.total_flips(), sparse_session.total_flips())
            << what << " flip accounting (seed " << seed << ")";
        faulted_trials += sparse_session.total_flips() > 0;
      }
    }
  }
  return faulted_trials;
}

TEST(SparseReplay, EltwiseGraphNeuronFaults) {
  const Network net = eltwise_net();
  FaultConfig config;
  config.ber = 1e-4;
  config.mode = InjectionMode::kNeuronLevel;
  EXPECT_GT(check_sparse_dense_scratch(net, config, 12, "eltwise neuron"),
            20);
}

TEST(SparseReplay, EltwiseGraphOpFaults) {
  const Network net = eltwise_net();
  FaultConfig config;
  config.ber = 1e-6;
  EXPECT_GT(check_sparse_dense_scratch(net, config, 12, "eltwise op"), 10);
}

TEST(SparseReplay, ConeCrossesConcat) {
  const Network net = concat_net();
  FaultConfig config;
  config.ber = 1e-4;
  config.mode = InjectionMode::kNeuronLevel;
  EXPECT_GT(check_sparse_dense_scratch(net, config, 16, "concat neuron"),
            25);
}

TEST(SparseReplay, ConcatGraphOpFaults) {
  const Network net = concat_net();
  FaultConfig config;
  config.ber = 1e-6;
  EXPECT_GT(check_sparse_dense_scratch(net, config, 12, "concat op"), 10);
}

TEST(SparseReplay, PoolGraphBothModes) {
  const Network net = pool_net();
  FaultConfig neuron;
  neuron.ber = 1e-4;
  neuron.mode = InjectionMode::kNeuronLevel;
  EXPECT_GT(check_sparse_dense_scratch(net, neuron, 10, "pool neuron"), 15);
  FaultConfig op;
  op.ber = 1e-6;
  EXPECT_GT(check_sparse_dense_scratch(net, op, 10, "pool op"), 8);
}

TEST(SparseReplay, HighFootprintFallsBackDenseAndStaysExact) {
  // A destruction-adjacent BER makes nearly every index dirty: the sparse
  // paths must bail to dense recomputes without changing a bit.
  const Network net = pool_net();
  FaultConfig config;
  config.ber = 1e-3;
  config.mode = InjectionMode::kNeuronLevel;
  EXPECT_GT(check_sparse_dense_scratch(net, config, 6, "high footprint"),
            30);
}

TEST(SparseReplay, ToggleRoundTrip) {
  EXPECT_TRUE(sparse_replay_enabled());
  set_sparse_replay_enabled(false);
  EXPECT_FALSE(sparse_replay_enabled());
  set_sparse_replay_enabled(true);
  EXPECT_TRUE(sparse_replay_enabled());
}

}  // namespace
}  // namespace winofault
