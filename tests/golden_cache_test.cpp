// Exactness proofs for the incremental fault-replay pipeline:
//   (a) the im2col + blocked GEMM fast path of the direct engine is
//       bit-identical to the instrumented reference loop across a
//       stride/pad/bias/kernel shape sweep, and
//   (b) cached incremental replay (Network::make_golden + forward_replay)
//       equals scratch execution for every trial — op-level, neuron-level,
//       and protected (TMR / fault-free-layer / op-kind) sessions, on both
//       hand-built and zoo models, under direct and Winograd policies.
#include <gtest/gtest.h>

#include <vector>

#include "conv/direct_conv.h"
#include "conv/engine.h"
#include "conv/fault_hook.h"
#include "nn/evaluator.h"
#include "nn/models/zoo.h"
#include "test_util.h"

namespace winofault {
namespace {

using testing::ConvProblem;
using testing::expect_tensors_equal;
using testing::make_problem;

// ---- (a) GEMM fast path vs reference loop ----

struct GemmCase {
  std::int64_t in_c, in_h, in_w, out_c, k, stride, pad;
  bool bias;
  DType dtype;
};

std::string gemm_case_name(const ::testing::TestParamInfo<GemmCase>& info) {
  const GemmCase& c = info.param;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "ic%lld_h%lld_w%lld_oc%lld_k%lld_s%lld_p%lld_%s_%s",
                static_cast<long long>(c.in_c), static_cast<long long>(c.in_h),
                static_cast<long long>(c.in_w), static_cast<long long>(c.out_c),
                static_cast<long long>(c.k), static_cast<long long>(c.stride),
                static_cast<long long>(c.pad), c.bias ? "bias" : "nobias",
                dtype_name(c.dtype));
  return buf;
}

class GemmFastPath : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmFastPath, BitIdenticalToReference) {
  const GemmCase& c = GetParam();
  Rng rng(0xC0FFEEULL + static_cast<std::uint64_t>(
                            c.in_c * 1009 + c.in_h * 131 + c.stride * 7));
  ConvDesc desc;
  desc.in_c = c.in_c;
  desc.in_h = c.in_h;
  desc.in_w = c.in_w;
  desc.out_c = c.out_c;
  desc.kh = desc.kw = c.k;
  desc.stride = c.stride;
  desc.pad = c.pad;
  desc.has_bias = c.bias;
  const ConvProblem p = make_problem(rng, desc, c.dtype);
  const TensorI32 ref = direct_forward_reference(desc, p.data());
  const TensorI32 gemm = direct_forward_gemm(desc, p.data());
  expect_tensors_equal(ref, gemm, "gemm vs reference");
  // The engine's public forward routes through the fast path.
  expect_tensors_equal(ref, direct_engine().forward(desc, p.data()),
                       "gemm vs engine.forward");
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, GemmFastPath,
    ::testing::Values(
        // 3x3 stride 1, the bulk of the zoo.
        GemmCase{3, 8, 8, 4, 3, 1, 1, true, DType::kInt16},
        GemmCase{3, 8, 8, 4, 3, 1, 1, false, DType::kInt8},
        // Strided convs (downsampling layers).
        GemmCase{4, 11, 9, 6, 3, 2, 1, true, DType::kInt16},
        GemmCase{4, 16, 16, 8, 3, 2, 0, true, DType::kInt8},
        // 1x1 pointwise (takes the zero-copy im2col shortcut).
        GemmCase{8, 7, 7, 16, 1, 1, 0, true, DType::kInt16},
        GemmCase{8, 7, 7, 16, 1, 1, 0, false, DType::kInt16},
        // 1x1 strided (shortcut must NOT apply).
        GemmCase{8, 8, 8, 4, 1, 2, 0, true, DType::kInt16},
        // 5x5 and 7x7 kernels, larger padding.
        GemmCase{2, 12, 12, 3, 5, 1, 2, true, DType::kInt16},
        GemmCase{3, 14, 14, 2, 7, 2, 3, true, DType::kInt8},
        // Linear-layer geometry: 1x1 over a [1, F, 1, 1] activation.
        GemmCase{64, 1, 1, 10, 1, 1, 0, true, DType::kInt16},
        // Channel counts straddling the GEMM's oc-block width.
        GemmCase{5, 9, 9, 1, 3, 1, 1, true, DType::kInt16},
        GemmCase{5, 9, 9, 5, 3, 1, 1, false, DType::kInt16},
        GemmCase{16, 33, 29, 13, 3, 1, 1, true, DType::kInt16}),
    gemm_case_name);

TEST(GemmFastPath, RandomShapeSweep) {
  Rng rng(0xFEEDULL);
  for (int trial = 0; trial < 40; ++trial) {
    ConvDesc desc;
    desc.in_c = 1 + static_cast<std::int64_t>(rng.next_below(8));
    desc.in_h = 3 + static_cast<std::int64_t>(rng.next_below(14));
    desc.in_w = 3 + static_cast<std::int64_t>(rng.next_below(14));
    desc.out_c = 1 + static_cast<std::int64_t>(rng.next_below(9));
    desc.kh = desc.kw = 1 + 2 * static_cast<std::int64_t>(rng.next_below(3));
    desc.stride = 1 + static_cast<std::int64_t>(rng.next_below(2));
    desc.pad = static_cast<std::int64_t>(rng.next_below(3));
    desc.has_bias = rng.bernoulli(0.5);
    if (desc.in_h < desc.kh || desc.in_w < desc.kw) continue;
    const DType dtype = rng.bernoulli(0.5) ? DType::kInt8 : DType::kInt16;
    const ConvProblem p = make_problem(rng, desc, dtype);
    expect_tensors_equal(direct_forward_reference(desc, p.data()),
                         direct_forward_gemm(desc, p.data()),
                         "random gemm vs reference");
  }
}

TEST(GemmFastPath, AccAbsmaxMatchesReferenceScan) {
  Rng rng(0xABCULL);
  ConvDesc desc;
  desc.in_c = 6;
  desc.in_h = 10;
  desc.in_w = 8;
  desc.out_c = 5;
  const ConvProblem p = make_problem(rng, desc, DType::kInt16);
  std::int64_t expected = 1;
  FaultHookNone hook;
  for (std::int64_t oc = 0; oc < desc.out_c; ++oc) {
    for (std::int64_t oy = 0; oy < desc.out_h(); ++oy) {
      for (std::int64_t ox = 0; ox < desc.out_w(); ++ox) {
        const std::int64_t acc =
            direct_output_acc(desc, p.data(), oc, oy, ox, hook);
        expected = std::max(expected, acc < 0 ? -acc : acc);
      }
    }
  }
  EXPECT_EQ(direct_acc_absmax(desc, p.data()), expected);
}

// ---- (b) cached incremental replay vs scratch execution ----

// Small DAG with a residual branch so the replay's dirty-cone logic crosses
// an Add join, plus pooling, flatten and a classifier.
Network replay_net() {
  Network net("replaynet", DType::kInt16);
  Rng rng(71);
  int x = net.add_input(Shape{1, 3, 12, 12});
  x = net.add_conv(x, 8, 3, 1, 1, rng);
  const int trunk = net.add_conv(x, 8, 3, 1, 1, rng);
  int branch = net.add_conv(trunk, 8, 3, 1, 1, rng);
  x = net.add_add(trunk, branch);
  x = net.add_maxpool(x, 2, 2);
  x = net.add_conv(x, 8, 5, 1, 2, rng);   // 5x5: always on the direct engine
  x = net.add_conv(x, 12, 3, 2, 1, rng);  // strided: Winograd falls back
  x = net.add_global_avgpool(x);
  x = net.add_flatten(x);
  x = net.add_linear(x, 5, rng);
  net.set_output(x);
  net.calibrate(make_images(net.input_shape(), 3, 17));
  return net;
}

// Asserts scratch forward == cached replay, trial by trial, for the given
// config across seeds and policies; also checks flip-count bookkeeping.
void check_replay_matches_scratch(const Network& net, const FaultConfig& config,
                                  int seeds, const char* what) {
  const std::vector<TensorF> images = make_images(net.input_shape(), 2, 99);
  for (const ConvPolicy policy :
       {ConvPolicy::kDirect, ConvPolicy::kWinograd2, ConvPolicy::kWinograd4}) {
    for (const TensorF& image : images) {
      const GoldenCache golden = net.make_golden(image, policy);
      for (int seed = 1; seed <= seeds; ++seed) {
        FaultSession scratch_session(config, static_cast<std::uint64_t>(seed));
        ExecContext ctx;
        ctx.policy = policy;
        ctx.session = &scratch_session;
        const TensorI32 scratch = net.forward(image, ctx);

        FaultSession replay_session(config, static_cast<std::uint64_t>(seed));
        const TensorI32 replay = net.forward_replay(golden, replay_session);

        expect_tensors_equal(scratch, replay, what);
        ASSERT_EQ(scratch_session.total_flips(),
                  replay_session.total_flips())
            << what << " flip accounting (seed " << seed << ")";
      }
    }
  }
}

TEST(CachedReplay, OpLevelMatchesScratch) {
  const Network net = replay_net();
  for (const double ber : {3e-8, 1e-6, 5e-5}) {
    FaultConfig config;
    config.ber = ber;
    check_replay_matches_scratch(net, config, 12, "op-level replay");
  }
}

TEST(CachedReplay, NeuronLevelMatchesScratch) {
  const Network net = replay_net();
  for (const double ber : {1e-6, 1e-4}) {
    FaultConfig config;
    config.ber = ber;
    config.mode = InjectionMode::kNeuronLevel;
    check_replay_matches_scratch(net, config, 12, "neuron-level replay");
  }
}

TEST(CachedReplay, ProtectedSessionsMatchScratch) {
  const Network net = replay_net();
  // Fine-grained TMR on some layers (partial coverage exercises the
  // sampler's rejection path inside plan()).
  FaultConfig tmr;
  tmr.ber = 5e-5;
  tmr.protection[0] = ProtectionSet(1.0, 1.0);
  tmr.protection[2] = ProtectionSet(0.5, 0.25);
  check_replay_matches_scratch(net, tmr, 10, "TMR-protected replay");

  // Fault-free layer exclusion (Fig 3 protocol): the excluded layer draws
  // nothing, shifting which layers fault.
  for (int fault_free = 0; fault_free < net.num_protectable(); ++fault_free) {
    FaultConfig excl;
    excl.ber = 2e-5;
    excl.fault_free_layer = fault_free;
    check_replay_matches_scratch(net, excl, 3, "fault-free-layer replay");
  }

  // Op-kind restriction (Fig 4 protocol).
  for (const OpKind kind : {OpKind::kMul, OpKind::kAdd}) {
    FaultConfig only;
    only.ber = 2e-5;
    only.only_kind = kind;
    check_replay_matches_scratch(net, only, 6, "op-kind-restricted replay");
  }
}

TEST(CachedReplay, UnfaultedTrialReturnsCachedPrediction) {
  const Network net = replay_net();
  const TensorF image = make_images(net.input_shape(), 1, 5)[0];
  const GoldenCache golden = net.make_golden(image, ConvPolicy::kDirect);
  FaultConfig config;  // ber 0: no faults ever
  FaultSession session(config, 1);
  EXPECT_EQ(net.predict_replay(golden, session), golden.prediction());
  ExecContext ctx;
  EXPECT_EQ(net.predict(image, ctx), golden.prediction());
}

TEST(CachedReplay, ZooModelMatchesScratch) {
  ZooConfig config;
  config.width = 0.125;
  config.calib_images = 2;
  const Network net = make_googlenet(config);
  const std::vector<TensorF> images = make_images(net.input_shape(), 1, 3);
  FaultConfig fault;
  fault.ber = 1e-7;
  for (const ConvPolicy policy :
       {ConvPolicy::kDirect, ConvPolicy::kWinograd2}) {
    const GoldenCache golden = net.make_golden(images[0], policy);
    for (int seed = 1; seed <= 5; ++seed) {
      FaultSession scratch_session(fault, static_cast<std::uint64_t>(seed));
      ExecContext ctx;
      ctx.policy = policy;
      ctx.session = &scratch_session;
      const TensorI32 scratch = net.forward(images[0], ctx);
      FaultSession replay_session(fault, static_cast<std::uint64_t>(seed));
      expect_tensors_equal(scratch, net.forward_replay(golden, replay_session),
                           "zoo replay");
    }
  }
}

TEST(Evaluator, ReuseGoldenMatchesScratchExactly) {
  const Network net = replay_net();
  const Dataset data = make_teacher_dataset(net, 16, 5, 0.9, 21);
  for (const InjectionMode mode :
       {InjectionMode::kOpLevel, InjectionMode::kNeuronLevel}) {
    EvalOptions options;
    options.fault.ber = 4e-6;
    options.fault.mode = mode;
    options.seed = 13;
    options.trials = 4;
    options.policy = ConvPolicy::kWinograd2;
    options.reuse_golden = true;
    const EvalResult cached = evaluate(net, data, options);
    options.reuse_golden = false;
    const EvalResult scratch = evaluate(net, data, options);
    EXPECT_DOUBLE_EQ(cached.accuracy, scratch.accuracy);
    EXPECT_DOUBLE_EQ(cached.avg_flips, scratch.avg_flips);
    EXPECT_EQ(cached.images, scratch.images);
  }
}

TEST(Evaluator, TrialsAverageAndStayDeterministic) {
  const Network net = replay_net();
  const Dataset data = make_teacher_dataset(net, 10, 5, 0.9, 22);
  EvalOptions options;
  options.fault.ber = 2e-6;
  options.seed = 5;
  options.trials = 8;
  options.threads = 1;
  const EvalResult serial = evaluate(net, data, options);
  options.threads = 4;
  const EvalResult parallel = evaluate(net, data, options);
  EXPECT_DOUBLE_EQ(serial.accuracy, parallel.accuracy);
  EXPECT_DOUBLE_EQ(serial.avg_flips, parallel.avg_flips);
}

}  // namespace
}  // namespace winofault
