// Persistent-store guarantees (core/store):
//   (a) a campaign killed at any point (simulated with cell_budget and with
//       a torn journal tail) resumes to totals bit-identical to an
//       uninterrupted in-RAM run;
//   (b) an unchanged spec regenerates its results from the journal without
//       executing anything; a changed grid re-runs only new/changed points;
//   (c) changing the environment (network/dataset) or a point's
//       result-determining fields invalidates exactly the affected state;
//   (d) goldens restored from disk shards are byte-exact, and corrupt
//       shards / garbage journals are rejected, never served.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "common/iofault/iofault.h"
#include "core/analysis/network_sweep.h"
#include "core/campaign/campaign.h"
#include "core/store/golden_store.h"
#include "core/store/handle_cache.h"
#include "core/store/hash.h"
#include "core/store/journal.h"
#include "core/store/segment_cache.h"
#include "nn/dataset.h"

namespace winofault {
namespace {

namespace fs = std::filesystem;

struct Fixture {
  Network net;
  Dataset data;
};

Fixture make_fixture(int images = 8, std::uint64_t weight_seed = 83) {
  Network net("store", DType::kInt16);
  Rng rng(weight_seed);
  int x = net.add_input(Shape{1, 3, 12, 12});
  x = net.add_conv(x, 8, 3, 1, 1, rng);
  x = net.add_maxpool(x, 2, 2);
  x = net.add_conv(x, 12, 3, 1, 1, rng);
  x = net.add_global_avgpool(x);
  x = net.add_flatten(x);
  x = net.add_linear(x, 5, rng);
  net.set_output(x);
  net.calibrate(make_images(net.input_shape(), 3, 19));
  Dataset data = make_teacher_dataset(net, images, 5, 0.9, 27);
  return Fixture{std::move(net), std::move(data)};
}

// Fresh store directory per test, under the gtest temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "winofault_store_" + name;
  fs::remove_all(dir);
  return dir;
}

std::vector<CampaignPoint> small_grid() {
  std::vector<CampaignPoint> points;
  for (const double ber : {1e-7, 3e-6}) {
    for (const ConvPolicy policy :
         {ConvPolicy::kDirect, ConvPolicy::kWinograd2}) {
      CampaignPoint point;
      point.fault.ber = ber;
      point.policy = policy;
      point.seed = 7;
      point.trials = 2;
      points.push_back(std::move(point));
    }
  }
  return points;
}

void expect_same_results(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    EXPECT_DOUBLE_EQ(a.points[p].accuracy, b.points[p].accuracy)
        << "point " << p;
    EXPECT_DOUBLE_EQ(a.points[p].avg_flips, b.points[p].avg_flips)
        << "point " << p;
    EXPECT_EQ(a.points[p].images, b.points[p].images) << "point " << p;
  }
}

// ---- (a) kill-mid-campaign resume ----

TEST(Store, BudgetedResumeIsBitIdenticalToCleanRun) {
  const Fixture f = make_fixture();
  CampaignSpec clean;
  clean.points = small_grid();
  const CampaignResult reference = run_campaign(f.net, f.data, clean);

  CampaignSpec stored = clean;
  stored.store.dir = fresh_dir("budget_resume");
  const std::int64_t cells =
      static_cast<std::int64_t>(f.data.size() * stored.points.size());

  // "Kill" the campaign twice by bounding executed cells, then finish.
  stored.store.cell_budget = cells / 3;
  const CampaignResult first = run_campaign(f.net, f.data, stored);
  EXPECT_EQ(first.stats.journal_cells_written, cells / 3);
  EXPECT_EQ(first.stats.cells_deferred, cells - cells / 3);

  const CampaignResult second = run_campaign(f.net, f.data, stored);
  EXPECT_EQ(second.stats.journal_cells_loaded, cells / 3);

  stored.store.cell_budget = 0;
  const CampaignResult finished = run_campaign(f.net, f.data, stored);
  EXPECT_EQ(finished.stats.cells_deferred, 0);
  EXPECT_EQ(finished.stats.journal_cells_loaded +
                finished.stats.journal_cells_written,
            cells);
  expect_same_results(reference, finished);
}

TEST(Store, TornJournalTailIsTruncatedAndReExecuted) {
  const Fixture f = make_fixture(6);
  CampaignSpec clean;
  clean.points = small_grid();
  const CampaignResult reference = run_campaign(f.net, f.data, clean);

  CampaignSpec stored = clean;
  stored.store.dir = fresh_dir("torn_tail");
  stored.store.spill_goldens = false;
  const CampaignResult full = run_campaign(f.net, f.data, stored);
  const std::int64_t cells =
      static_cast<std::int64_t>(f.data.size() * stored.points.size());
  EXPECT_EQ(full.stats.journal_cells_written, cells);

  // Simulate a process killed mid-append: half a record of garbage at the
  // end of the journal.
  const std::string path = ResultJournal::journal_path(
      stored.store.dir, campaign_env_hash(f.net, f.data));
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("TORNWRITE0123456789", 19);
  }
  const CampaignResult resumed = run_campaign(f.net, f.data, stored);
  // Every intact record survives; only the torn tail is discarded.
  EXPECT_EQ(resumed.stats.journal_cells_loaded, cells);
  EXPECT_EQ(resumed.stats.journal_cells_written, 0);
  expect_same_results(reference, resumed);
}

// ---- (b) incremental regeneration ----

TEST(Store, UnchangedSpecRegeneratesWithoutExecuting) {
  const Fixture f = make_fixture();
  CampaignSpec stored;
  stored.points = small_grid();
  stored.store.dir = fresh_dir("regen");
  const CampaignResult first = run_campaign(f.net, f.data, stored);
  const std::int64_t cells =
      static_cast<std::int64_t>(f.data.size() * stored.points.size());
  EXPECT_EQ(first.stats.journal_cells_written, cells);
  EXPECT_GT(first.stats.inferences, 0);

  const CampaignResult regen = run_campaign(f.net, f.data, stored);
  EXPECT_EQ(regen.stats.journal_cells_loaded, cells);
  EXPECT_EQ(regen.stats.journal_cells_written, 0);
  EXPECT_EQ(regen.stats.inferences, 0);     // nothing executed
  EXPECT_EQ(regen.stats.golden_builds, 0);  // not even a golden
  expect_same_results(first, regen);
}

TEST(Store, ChangedGridReRunsOnlyNewPoints) {
  const Fixture f = make_fixture(6);
  CampaignSpec stored;
  stored.points = small_grid();
  stored.store.dir = fresh_dir("changed_grid");
  run_campaign(f.net, f.data, stored);
  const std::int64_t images = static_cast<std::int64_t>(f.data.size());

  // Grow the grid by one point and change one existing point's seed: only
  // those two points' cells execute.
  CampaignSpec grown = stored;
  grown.points[1].seed = 99;
  CampaignPoint extra;
  extra.fault.ber = 5e-7;
  extra.seed = 7;
  extra.trials = 2;
  grown.points.push_back(extra);

  const CampaignResult result = run_campaign(f.net, f.data, grown);
  EXPECT_EQ(result.stats.journal_cells_loaded,
            images * static_cast<std::int64_t>(small_grid().size() - 1));
  EXPECT_EQ(result.stats.journal_cells_written, images * 2);

  // The re-keyed and new points match fresh point-by-point evaluation.
  EvalOptions changed;
  changed.fault = grown.points[1].fault;
  changed.policy = grown.points[1].policy;
  changed.seed = grown.points[1].seed;
  changed.trials = grown.points[1].trials;
  const EvalResult expect_changed = evaluate(f.net, f.data, changed);
  EXPECT_DOUBLE_EQ(result.points[1].accuracy, expect_changed.accuracy);

  EvalOptions added;
  added.fault = extra.fault;
  added.seed = extra.seed;
  added.trials = extra.trials;
  const EvalResult expect_added = evaluate(f.net, f.data, added);
  EXPECT_DOUBLE_EQ(result.points.back().accuracy, expect_added.accuracy);
}

// ---- (c) environment / spec-hash invalidation ----

TEST(Store, DifferentNetworkNeverReusesJournalCells) {
  const Fixture a = make_fixture(6, /*weight_seed=*/83);
  const Fixture b = make_fixture(6, /*weight_seed=*/84);
  ASSERT_NE(campaign_env_hash(a.net, a.data),
            campaign_env_hash(b.net, b.data));

  CampaignSpec spec;
  spec.points = small_grid();
  spec.store.dir = fresh_dir("env_invalidation");
  run_campaign(a.net, a.data, spec);

  const CampaignResult other = run_campaign(b.net, b.data, spec);
  EXPECT_EQ(other.stats.journal_cells_loaded, 0);
  // And b's results are exactly what b computes without any store.
  CampaignSpec plain;
  plain.points = spec.points;
  expect_same_results(run_campaign(b.net, b.data, plain), other);
}

TEST(Store, PointHashCoversResultDeterminingFieldsOnly) {
  CampaignPoint point;
  point.fault.ber = 1e-6;
  point.seed = 5;
  const std::uint64_t base = campaign_point_hash(point);

  CampaignPoint reseeded = point;
  reseeded.seed = 6;
  EXPECT_NE(campaign_point_hash(reseeded), base);
  CampaignPoint retried = point;
  retried.trials = 3;
  EXPECT_NE(campaign_point_hash(retried), base);
  CampaignPoint protectd = point;
  protectd.fault.protection[0] = ProtectionSet(1.0, 0.5);
  EXPECT_NE(campaign_point_hash(protectd), base);

  // Fields that provably cannot change a cell's tallies do not invalidate
  // finished work.
  CampaignPoint tagged = point;
  tagged.tag = "label";
  tagged.reuse_golden = false;
  tagged.max_expected_flips = 1.0;
  EXPECT_EQ(campaign_point_hash(tagged), base);
}

TEST(Store, GarbageJournalFileIsDiscarded) {
  const Fixture f = make_fixture(4);
  CampaignSpec stored;
  stored.points = small_grid();
  stored.store.dir = fresh_dir("garbage_journal");
  stored.store.spill_goldens = false;
  fs::create_directories(stored.store.dir);
  const std::string path = ResultJournal::journal_path(
      stored.store.dir, campaign_env_hash(f.net, f.data));
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a journal";
  }
  const CampaignResult result = run_campaign(f.net, f.data, stored);
  EXPECT_EQ(result.stats.journal_cells_loaded, 0);
  CampaignSpec plain;
  plain.points = stored.points;
  expect_same_results(run_campaign(f.net, f.data, plain), result);
  // The rewritten journal is valid again: a rerun loads every cell.
  const CampaignResult regen = run_campaign(f.net, f.data, stored);
  EXPECT_EQ(regen.stats.journal_cells_loaded,
            static_cast<std::int64_t>(f.data.size() * stored.points.size()));
}

// ---- (d) golden tier-2: byte-exact restore, corrupt-shard rejection ----

TEST(Store, GoldenCodecRoundTripsByteExactly) {
  const Fixture f = make_fixture(2);
  for (const ConvPolicy policy :
       {ConvPolicy::kDirect, ConvPolicy::kWinograd2}) {
    const GoldenCache golden = f.net.make_golden(f.data.images[0], policy);
    const std::optional<GoldenCache> back =
        GoldenCodec::decode(GoldenCodec::encode(golden));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->policy(), golden.policy());
    EXPECT_EQ(back->prediction(), golden.prediction());
    EXPECT_EQ(back->logits(), golden.logits());
    for (int node = 0; node < f.net.num_nodes(); ++node) {
      EXPECT_EQ(back->node_output(node).tensor,
                golden.node_output(node).tensor);
      EXPECT_EQ(back->node_output(node).quant,
                golden.node_output(node).quant);
    }
  }
}

TEST(Store, DiskRestoredGoldensKeepCampaignBitIdentical) {
  const Fixture f = make_fixture();
  CampaignSpec plain;
  plain.points = small_grid();
  plain.golden_capacity = 1;  // constant golden thrash
  plain.threads = 1;
  const CampaignResult reference = run_campaign(f.net, f.data, plain);

  CampaignSpec stored = plain;
  stored.store.dir = fresh_dir("disk_goldens");
  stored.store.journal = false;  // force re-execution: isolate the tier-2
  const CampaignResult cold = run_campaign(f.net, f.data, stored);
  EXPECT_GT(cold.stats.golden_spills, 0);
  EXPECT_GT(cold.stats.golden_restores, 0);  // within-run evict + restore
  expect_same_results(reference, cold);

  // A second run restores from the first run's shards instead of building.
  const CampaignResult warm = run_campaign(f.net, f.data, stored);
  EXPECT_LT(warm.stats.golden_builds, reference.stats.golden_builds);
  EXPECT_GT(warm.stats.golden_restores, 0);
  expect_same_results(reference, warm);
}

TEST(Store, CorruptShardIsRejectedAndRebuilt) {
  const Fixture f = make_fixture(3);
  const std::string dir = fresh_dir("corrupt_shard");
  const std::uint64_t env = campaign_env_hash(f.net, f.data);
  const GoldenCache golden =
      f.net.make_golden(f.data.images[0], ConvPolicy::kDirect);
  {
    GoldenStore store(dir, env, 1ULL << 30);
    store.save(0, ConvPolicy::kDirect, golden);
    ASSERT_TRUE(store.load(0, ConvPolicy::kDirect).has_value());
  }

  // Flip one payload byte: the CRC must reject the shard and delete it.
  GoldenStore store(dir, env, 1ULL << 30);
  const std::string shard = store.shard_path(0, ConvPolicy::kDirect);
  {
    std::fstream file(shard, std::ios::binary | std::ios::in | std::ios::out);
    char byte = 0;
    file.seekg(100);
    file.get(byte);
    file.seekp(100);
    file.put(static_cast<char>(byte ^ 0x40));
  }
  EXPECT_FALSE(store.load(0, ConvPolicy::kDirect).has_value());
  EXPECT_EQ(store.rejects(), 1);
  EXPECT_FALSE(fs::exists(shard));  // deleted so the rebuild respills

  // A truncated shard is rejected the same way.
  store.save(0, ConvPolicy::kDirect, golden);
  fs::resize_file(shard, fs::file_size(shard) / 2);
  EXPECT_FALSE(store.load(0, ConvPolicy::kDirect).has_value());

  // A corrupted payload_size in the (un-CRC'd) header must reject, never
  // allocate: the size is bounded against the real file size.
  store.save(0, ConvPolicy::kDirect, golden);
  {
    std::fstream file(shard, std::ios::binary | std::ios::in | std::ios::out);
    const std::uint64_t huge = ~0ULL;
    file.seekp(32);  // ShardHeader::payload_size
    file.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  EXPECT_FALSE(store.load(0, ConvPolicy::kDirect).has_value());

  // A shard from a different environment is unreachable (different name),
  // and a wrong-env header under the right name is rejected.
  GoldenStore other(dir, env ^ 1, 1ULL << 30);
  other.save(0, ConvPolicy::kDirect, golden);
  fs::copy_file(other.shard_path(0, ConvPolicy::kDirect), shard,
                fs::copy_options::overwrite_existing);
  EXPECT_FALSE(store.load(0, ConvPolicy::kDirect).has_value());
}

// ---- handle cache (sequential-adaptive consumers) ----

TEST(Store, HandleCacheSharesOpenHandlesAndSeesAppends) {
  const std::string dir = fresh_dir("handles");
  StoreOptions options;
  options.dir = dir;
  options.reuse_handles = true;
  const std::uint64_t env = 4242;

  const StoreHandles a = acquire_store_handles(options, env);
  const StoreHandles b = acquire_store_handles(options, env);
  ASSERT_NE(a.journal, nullptr);
  EXPECT_EQ(a.journal.get(), b.journal.get()) << "one open handle per key";
  EXPECT_EQ(a.goldens.get(), b.goldens.get());

  // Appends through the shared handle are visible to later lookups without
  // any re-read — the O(1) warm-resume property plan_tmr relies on.
  a.journal->append(JournalCell{21, 3, 1, 6});
  JournalCell cell;
  EXPECT_TRUE(b.journal->lookup(21, 3, &cell));
  EXPECT_EQ(cell.flips, 6);

  // Different environment or mode: distinct handles.
  EXPECT_NE(acquire_store_handles(options, env ^ 1).journal.get(),
            a.journal.get());
  EXPECT_NE(acquire_store_handles(options, env,
                                  ResultJournal::Mode::kReadOnly)
                .journal.get(),
            a.journal.get());

  // After a cache clear the cell still comes back from disk.
  clear_store_handle_cache();
  const StoreHandles c = acquire_store_handles(options, env);
  EXPECT_NE(c.journal.get(), a.journal.get());
  EXPECT_TRUE(c.journal->lookup(21, 3, &cell));
}

TEST(Store, PlannerStyleReuseIsBitIdenticalToFreshHandles) {
  const Fixture f = make_fixture(4);
  CampaignSpec spec;
  spec.points = small_grid();
  const CampaignResult reference = run_campaign(f.net, f.data, spec);

  // Same campaign twice through cached handles (as plan_tmr's checks do):
  // first run executes and journals, second replays from the shared
  // in-memory handle without executing.
  spec.store.dir = fresh_dir("handle_reuse");
  spec.store.reuse_handles = true;
  const CampaignRunner runner(f.net, f.data);
  const CampaignResult first = runner.run(spec);
  expect_same_results(reference, first);
  const CampaignResult second = runner.run(spec);
  expect_same_results(reference, second);
  EXPECT_EQ(second.stats.inferences, 0);
  EXPECT_EQ(second.stats.journal_cells_loaded,
            first.stats.journal_cells_written);
  clear_store_handle_cache();
}

// ---- spill-on-shutdown ----

TEST(Store, ShutdownFlushWarmsTheNextRun) {
  const Fixture f = make_fixture(4);
  CampaignSpec spec;
  spec.points = small_grid();
  const CampaignResult reference = run_campaign(f.net, f.data, spec);

  spec.store.dir = fresh_dir("flush");
  spec.golden_capacity = 64;  // nothing evicts: only the shutdown flush
                              // can have written shards
  const CampaignResult first = run_campaign(f.net, f.data, spec);
  expect_same_results(reference, first);
  EXPECT_EQ(first.stats.golden_evictions, 0);
  EXPECT_GT(first.stats.golden_flushed, 0);
  EXPECT_GT(first.stats.golden_spills, 0);

  // Re-execute everything (journal off) in a fresh runner: every golden
  // restores from the flushed shards instead of rebuilding.
  CampaignSpec rerun = spec;
  rerun.store.journal = false;
  const CampaignResult warm = run_campaign(f.net, f.data, rerun);
  expect_same_results(reference, warm);
  EXPECT_GT(warm.stats.golden_restores, 0);
  EXPECT_EQ(warm.stats.golden_builds, 0);
}

// ---- PARTIAL propagation through spec builders ----

TEST(Store, SweepReportsDeferredCellsFromBudgetedRuns) {
  const Fixture f = make_fixture(4);
  SweepOptions options;
  options.bers = {1e-7, 3e-6};
  options.seed = 7;
  options.store.dir = fresh_dir("sweep_partial");
  options.store.cell_budget = 3;
  const SweepResult partial =
      accuracy_sweeps(f.net, f.data, std::span(&options, 1));
  EXPECT_GT(partial.stats.cells_deferred, 0)
      << "budgeted sweep must flag its curves as PARTIAL";

  options.store.cell_budget = 0;
  const SweepResult finished =
      accuracy_sweeps(f.net, f.data, std::span(&options, 1));
  EXPECT_EQ(finished.stats.cells_deferred, 0);
}

TEST(Store, HandleCacheTrimEvictsOldestUnusedHandlesOnly) {
  clear_store_handle_cache();
  const std::string dir = fresh_dir("trim");
  StoreOptions options;
  options.dir = dir;

  // Populate three journal+golden pairs; keep a live reference to env 1's
  // handles (a resident daemon session pinning its store).
  const StoreHandles pinned = acquire_store_handles(options, 1);
  acquire_store_handles(options, 2).journal->append(JournalCell{7, 0, 1, 2});
  acquire_store_handles(options, 3);
  ASSERT_EQ(store_handle_cache_size(), 6u);

  // Trimming to 2 must take the oldest *unused* handles; env 1's pinned
  // pair must survive in the registry or get dropped — either way the
  // pinned pointers stay valid — but never be closed out from under us.
  const std::size_t evicted = trim_store_handle_cache(2);
  EXPECT_EQ(evicted, 4u);
  EXPECT_EQ(store_handle_cache_size(), 2u);
  // Re-acquiring env 1 returns the still-cached pinned handles.
  EXPECT_EQ(acquire_store_handles(options, 1).journal.get(),
            pinned.journal.get());

  // Evicted env 2 re-opens from disk with its appended cell intact —
  // eviction closes handles, it never loses durable state.
  JournalCell cell;
  EXPECT_TRUE(acquire_store_handles(options, 2).journal->lookup(7, 0, &cell));
  EXPECT_EQ(cell.flips, 2);

  // Trim below the in-use count refuses to evict live handles.
  clear_store_handle_cache();
  const StoreHandles live = acquire_store_handles(options, 9);
  EXPECT_EQ(trim_store_handle_cache(0), 0u);
  EXPECT_EQ(store_handle_cache_size(), 2u);
  EXPECT_EQ(acquire_store_handles(options, 9).journal.get(),
            live.journal.get());
  clear_store_handle_cache();
}

TEST(Store, ReuseHandlesResumeMatchesReopenResume) {
  const Fixture f = make_fixture(4);
  CampaignSpec spec;
  spec.points = small_grid();
  const CampaignResult reference = run_campaign(f.net, f.data, spec);

  // Resume path A: fresh handles per campaign (re-open + re-read).
  spec.store.dir = fresh_dir("reopen_equiv_a");
  spec.store.reuse_handles = false;
  run_campaign(f.net, f.data, spec);
  const CampaignResult reopened = run_campaign(f.net, f.data, spec);

  // Resume path B: cached handles (reuse_handles) over an identical store.
  spec.store.dir = fresh_dir("reopen_equiv_b");
  spec.store.reuse_handles = true;
  const CampaignRunner runner(f.net, f.data);
  runner.run(spec);
  const CampaignResult reused = runner.run(spec);

  // Both resumes replay every cell without executing, with identical
  // numbers — handle reuse is a latency optimization, never a semantic.
  expect_same_results(reference, reopened);
  expect_same_results(reference, reused);
  EXPECT_EQ(reopened.stats.inferences, 0);
  EXPECT_EQ(reused.stats.inferences, 0);
  EXPECT_EQ(reused.stats.journal_cells_loaded,
            reopened.stats.journal_cells_loaded);
  clear_store_handle_cache();
}

TEST(Store, SegmentCacheReadsOnlyTheAppendedSuffix) {
  const std::string dir = fresh_dir("segcache");
  const std::uint64_t env = 0xabcdef12;
  const std::string path = ResultJournal::segment_path(dir, env, "w1");
  auto journal = std::make_unique<ResultJournal>(
      dir, env, ResultJournal::Mode::kAppend, "w1");
  for (int i = 0; i < 3; ++i) {
    journal->append(JournalCell{100 + static_cast<std::uint64_t>(i), i, 1,
                                i});
  }

  const SegmentCacheStats before = segment_cache_stats();
  std::vector<JournalCell> cells;
  bool torn = true;
  ASSERT_TRUE(read_segment_cells_cached(path, env, &cells, &torn));
  EXPECT_EQ(cells.size(), 3u);
  EXPECT_FALSE(torn);
  SegmentCacheStats after = segment_cache_stats();
  EXPECT_EQ(after.full_reads - before.full_reads, 1);
  EXPECT_EQ(after.cells_parsed - before.cells_parsed, 3);

  // Append through the live handle; the next cached read must parse only
  // the two new records.
  journal->append(JournalCell{200, 7, 1, 9});
  journal->append(JournalCell{201, 8, 0, 4});
  cells.clear();
  ASSERT_TRUE(read_segment_cells_cached(path, env, &cells, &torn));
  EXPECT_EQ(cells.size(), 5u);
  EXPECT_FALSE(torn);
  after = segment_cache_stats();
  EXPECT_EQ(after.full_reads - before.full_reads, 1) << "no second full read";
  EXPECT_EQ(after.incremental_reads - before.incremental_reads, 1);
  EXPECT_EQ(after.cells_parsed - before.cells_parsed, 5);

  // An unchanged file is a pure cache hit: zero records parsed.
  cells.clear();
  ASSERT_TRUE(read_segment_cells_cached(path, env, &cells, &torn));
  EXPECT_EQ(cells.size(), 5u);
  after = segment_cache_stats();
  EXPECT_EQ(after.cells_parsed - before.cells_parsed, 5);
  clear_segment_cache();
}

TEST(Store, SegmentCacheToleratesTornTailsAndDetectsReplacement) {
  const std::string dir = fresh_dir("segcache_torn");
  const std::uint64_t env = 0x777;
  const std::string path = ResultJournal::segment_path(dir, env, "w2");
  {
    ResultJournal journal(dir, env, ResultJournal::Mode::kAppend, "w2");
    journal.append(JournalCell{1, 0, 1, 1});
    journal.append(JournalCell{2, 1, 0, 2});
  }
  // Crash mid-append: garbage trailing bytes shorter than a record.
  {
    std::ofstream torn_tail(path, std::ios::binary | std::ios::app);
    torn_tail << "partial-record-garbage";
  }
  std::vector<JournalCell> cells;
  bool torn = false;
  ASSERT_TRUE(read_segment_cells_cached(path, env, &cells, &torn));
  EXPECT_EQ(cells.size(), 2u) << "intact records served, tail dropped";
  EXPECT_TRUE(torn);
  // Torn state is not sticky in the cache: the same answer on a re-read.
  cells.clear();
  ASSERT_TRUE(read_segment_cells_cached(path, env, &cells, &torn));
  EXPECT_EQ(cells.size(), 2u);
  EXPECT_TRUE(torn);

  // Append-mode recovery repairs the file through a tmp+rename (new
  // inode) and appends one more cell: the cache must detect the
  // replacement and re-read from scratch rather than serve stale offsets.
  const SegmentCacheStats before = segment_cache_stats();
  {
    ResultJournal journal(dir, env, ResultJournal::Mode::kAppend, "w2");
    journal.append(JournalCell{3, 2, 1, 3});
  }
  cells.clear();
  ASSERT_TRUE(read_segment_cells_cached(path, env, &cells, &torn));
  EXPECT_EQ(cells.size(), 3u);
  EXPECT_FALSE(torn);
  const SegmentCacheStats after = segment_cache_stats();
  EXPECT_EQ(after.invalidations - before.invalidations, 1);
  EXPECT_EQ(after.full_reads - before.full_reads, 1);

  // Deletion (a merge retiring the segment) drops the entry.
  fs::remove(path);
  cells.clear();
  EXPECT_FALSE(read_segment_cells_cached(path, env, &cells, &torn));
  clear_segment_cache();
}

// ---- chaos (common/iofault): self-healing responses to injected faults --

// Installs a fault schedule for one scope and always clears it afterwards.
class ScopedChaos {
 public:
  explicit ScopedChaos(const std::string& spec) {
    std::string error;
    auto parsed = iofault::FaultSchedule::parse(spec, &error);
    EXPECT_TRUE(parsed.has_value()) << error;
    iofault::set_schedule(std::move(parsed));
  }
  ~ScopedChaos() { iofault::set_schedule(std::nullopt); }
};

TEST(Store, CorruptShardIsQuarantinedForPostMortem) {
  const Fixture f = make_fixture(2);
  const std::string dir = fresh_dir("quarantine");
  const std::uint64_t env = campaign_env_hash(f.net, f.data);
  const GoldenCache golden =
      f.net.make_golden(f.data.images[0], ConvPolicy::kDirect);
  GoldenStore store(dir, env, 1ULL << 30);
  store.save(0, ConvPolicy::kDirect, golden);
  const std::string shard = store.shard_path(0, ConvPolicy::kDirect);
  {
    std::fstream file(shard, std::ios::binary | std::ios::in | std::ios::out);
    char byte = 0;
    file.seekg(100);
    file.get(byte);
    file.seekp(100);
    file.put(static_cast<char>(byte ^ 0x40));
  }
  EXPECT_FALSE(store.load(0, ConvPolicy::kDirect).has_value());
  EXPECT_EQ(store.quarantines(), 1);
  EXPECT_FALSE(fs::exists(shard));  // out of the way of the rebuild
  EXPECT_TRUE(fs::exists(shard + ".quarantine"));  // kept for post-mortem

  // Startup indexing skips quarantined files, and the slot respills
  // cleanly over the vacated path.
  GoldenStore reopened(dir, env, 1ULL << 30);
  reopened.save(0, ConvPolicy::kDirect, golden);
  EXPECT_TRUE(reopened.load(0, ConvPolicy::kDirect).has_value());
  EXPECT_EQ(reopened.quarantines(), 0);
  EXPECT_TRUE(fs::exists(shard + ".quarantine"));
}

TEST(Store, EnospcDisablesSpillTierButStoreStaysUsable) {
  const Fixture f = make_fixture(2);
  const std::string dir = fresh_dir("enospc");
  const std::uint64_t env = campaign_env_hash(f.net, f.data);
  const GoldenCache golden =
      f.net.make_golden(f.data.images[0], ConvPolicy::kDirect);
  ScopedChaos chaos("1:enospc@write:*.tmp#1+");  // every spill hits ENOSPC
  GoldenStore store(dir, env, 1ULL << 30);
  store.save(0, ConvPolicy::kDirect, golden);
  EXPECT_TRUE(store.spill_disabled());
  EXPECT_FALSE(store.load(0, ConvPolicy::kDirect).has_value());
  EXPECT_EQ(store.bytes_on_disk(), 0u);
  // Later saves are skipped outright — no temp files accumulate and no
  // further ENOSPC is even provoked (the tier is off, not limping).
  ASSERT_NE(iofault::schedule(), nullptr);
  const std::int64_t before = iofault::schedule()->injections();
  store.save(1, ConvPolicy::kDirect, golden);
  EXPECT_EQ(iofault::schedule()->injections(), before);
  EXPECT_TRUE(fs::is_empty(dir));
}

TEST(Store, ChaosTornJournalAppendIsDroppedOnRecovery) {
  const std::string dir = fresh_dir("chaos_journal");
  const std::uint64_t env = 0x123;
  {
    ScopedChaos chaos("3:torn(12)@write:*.journal#2");
    ResultJournal journal(dir, env, ResultJournal::Mode::kAppend);
    journal.append(JournalCell{1, 0, 1, 1});
    journal.append(JournalCell{2, 1, 0, 2});  // torn 12 bytes in
    EXPECT_FALSE(journal.can_append());  // durability honestly renounced
    EXPECT_EQ(journal.appended_cells(), 1);
    journal.append(JournalCell{3, 2, 1, 3});  // silently dropped, no crash
    EXPECT_EQ(journal.appended_cells(), 1);
  }
  // Recovery truncates the torn record and reopens for appending.
  ResultJournal recovered(dir, env, ResultJournal::Mode::kAppend);
  EXPECT_EQ(recovered.recovered_cells(), 1);
  EXPECT_TRUE(recovered.lookup(1, 0, nullptr));
  EXPECT_FALSE(recovered.lookup(2, 1, nullptr));
  EXPECT_TRUE(recovered.can_append());
}

TEST(Store, CampaignUnderChaosCompletesBitIdenticalAndReplaysExactly) {
  // The acceptance oracle for the whole chaos subsystem: a campaign under
  // a mixed fault schedule (torn journal append, shard-read EIO, spill
  // ENOSPC) must still complete with results bit-identical to a clean
  // run, and re-running the same spec over a fresh store must reproduce
  // the exact injection sequence.
  const Fixture f = make_fixture();
  CampaignSpec plain;
  plain.points = small_grid();
  plain.golden_capacity = 1;  // constant spill/restore traffic to fault
  plain.threads = 1;          // deterministic op stream for the log replay
  const CampaignResult reference = run_campaign(f.net, f.data, plain);

  const std::string spec =
      "11:torn(20)@write:*.journal#2;eio@read:*.shard#1;enospc@write:*.tmp#5";
  CampaignSpec stored = plain;
  stored.store.dir = fresh_dir("chaos_campaign");
  std::string first_log;
  {
    ScopedChaos chaos(spec);
    const CampaignResult under_chaos = run_campaign(f.net, f.data, stored);
    expect_same_results(reference, under_chaos);
    ASSERT_NE(iofault::schedule(), nullptr);
    EXPECT_GT(iofault::schedule()->injections(), 0);
    first_log = iofault::schedule()->log_text(/*with_paths=*/false);
  }
  {
    CampaignSpec again = plain;
    again.store.dir = fresh_dir("chaos_campaign_replay");
    ScopedChaos chaos(spec);
    const CampaignResult replay = run_campaign(f.net, f.data, again);
    expect_same_results(reference, replay);
    EXPECT_EQ(iofault::schedule()->log_text(/*with_paths=*/false), first_log);
  }
  // A clean rerun over the chaos-damaged store self-heals: the torn
  // journal tail truncates, missing cells re-execute, totals unchanged.
  const CampaignResult healed = run_campaign(f.net, f.data, stored);
  expect_same_results(reference, healed);
}

TEST(Store, GoldenDiskBudgetEvictsOldestShards) {
  const Fixture f = make_fixture(4);
  const std::string dir = fresh_dir("budget");
  const std::uint64_t env = campaign_env_hash(f.net, f.data);
  const GoldenCache golden =
      f.net.make_golden(f.data.images[0], ConvPolicy::kDirect);
  const std::uint64_t one_shard =
      GoldenCodec::encode(golden).size() + 64;  // payload + header slack

  GoldenStore store(dir, env, 2 * one_shard);
  store.save(0, ConvPolicy::kDirect, golden);
  store.save(1, ConvPolicy::kDirect, golden);
  store.save(2, ConvPolicy::kDirect, golden);  // evicts shard 0
  EXPECT_GT(store.budget_evictions(), 0);
  EXPECT_FALSE(store.load(0, ConvPolicy::kDirect).has_value());
  EXPECT_TRUE(store.load(2, ConvPolicy::kDirect).has_value());
  EXPECT_LE(store.bytes_on_disk(), 2 * one_shard);
}

// ---- (e) cost ledger ----

// Record framing shared with journal.cpp (header 16 bytes, record 40).
constexpr std::uintmax_t kHeaderBytes = 16;
constexpr std::uintmax_t kRecordBytes = 40;

TEST(Store, CostLedgerRidesWithCellsAndRecovers) {
  const Fixture f = make_fixture(6);
  CampaignSpec stored;
  stored.points = small_grid();
  stored.store.dir = fresh_dir("cost_ledger");
  const CampaignResult first = run_campaign(f.net, f.data, stored);
  const std::int64_t cells =
      static_cast<std::int64_t>(f.data.size() * stored.points.size());
  EXPECT_EQ(first.stats.journal_cells_written, cells);

  const std::uint64_t env = campaign_env_hash(f.net, f.data);
  const std::string path =
      ResultJournal::journal_path(stored.store.dir, env);
  // Every cell record is followed by its cost record.
  EXPECT_EQ(fs::file_size(path), kHeaderBytes + 2 * kRecordBytes *
                                     static_cast<std::uintmax_t>(cells));

  ResultJournal journal(stored.store.dir, env,
                        ResultJournal::Mode::kReadOnly);
  EXPECT_EQ(journal.recovered_cells(), cells);
  EXPECT_EQ(journal.cost_records(), cells);

  // Each recovered cost is addressable by its cell's identity and carries
  // sane measurements; the per-point aggregate covers every cell.
  std::vector<JournalCell> raw_cells;
  std::vector<JournalCost> raw_costs;
  ASSERT_TRUE(ResultJournal::read_cells_from(path, env, 0, &raw_cells,
                                             nullptr, nullptr, nullptr,
                                             &raw_costs));
  ASSERT_EQ(raw_cells.size(), static_cast<std::size_t>(cells));
  ASSERT_EQ(raw_costs.size(), static_cast<std::size_t>(cells));
  for (std::size_t i = 0; i < raw_cells.size(); ++i) {
    JournalCost cost;
    ASSERT_TRUE(journal.lookup_cost(raw_cells[i].point_hash,
                                    raw_cells[i].image, &cost));
    EXPECT_GE(cost.wall_us, 0);
    EXPECT_GE(cost.flips_sq, 0);
  }
  std::int64_t aggregated = 0;
  for (const auto& [point, cost] : journal.point_costs()) {
    EXPECT_GT(cost.cells, 0);
    aggregated += cost.cells;
  }
  EXPECT_EQ(aggregated, cells);

  // Replay regenerates from the ledgered journal without executing and
  // without rewriting it.
  const CampaignResult replay = run_campaign(f.net, f.data, stored);
  EXPECT_EQ(replay.stats.journal_cells_loaded, cells);
  EXPECT_EQ(replay.stats.inferences, 0);
  expect_same_results(first, replay);
}

TEST(Store, PreLedgerJournalReplaysBitIdentically) {
  const Fixture f = make_fixture(6);
  CampaignSpec clean;
  clean.points = small_grid();
  const CampaignResult reference = run_campaign(f.net, f.data, clean);

  // cost_ledger=false writes the byte-wise pre-ledger format: header +
  // one 40-byte record per cell, nothing else.
  CampaignSpec legacy = clean;
  legacy.store.dir = fresh_dir("pre_ledger");
  legacy.store.cost_ledger = false;
  const CampaignResult written = run_campaign(f.net, f.data, legacy);
  const std::int64_t cells =
      static_cast<std::int64_t>(f.data.size() * legacy.points.size());
  EXPECT_EQ(written.stats.journal_cells_written, cells);
  const std::uint64_t env = campaign_env_hash(f.net, f.data);
  const std::string path =
      ResultJournal::journal_path(legacy.store.dir, env);
  EXPECT_EQ(fs::file_size(path), kHeaderBytes + kRecordBytes *
                                     static_cast<std::uintmax_t>(cells));

  // A ledger-aware reader replays the pre-ledger journal bit-identically
  // — every cell loads, nothing executes, no costs materialize, and the
  // file itself is untouched.
  CampaignSpec replay = legacy;
  replay.store.cost_ledger = true;
  const CampaignResult regen = run_campaign(f.net, f.data, replay);
  EXPECT_EQ(regen.stats.journal_cells_loaded, cells);
  EXPECT_EQ(regen.stats.inferences, 0);
  expect_same_results(reference, regen);
  EXPECT_EQ(fs::file_size(path), kHeaderBytes + kRecordBytes *
                                     static_cast<std::uintmax_t>(cells));
  ResultJournal journal(legacy.store.dir, env,
                        ResultJournal::Mode::kReadOnly);
  EXPECT_EQ(journal.recovered_cells(), cells);
  EXPECT_EQ(journal.cost_records(), 0);
}

TEST(Store, TornCostRecordLosesTheCostNeverTheCell) {
  const Fixture f = make_fixture(6);
  CampaignSpec stored;
  stored.points = small_grid();
  stored.store.dir = fresh_dir("torn_cost");
  const CampaignResult first = run_campaign(f.net, f.data, stored);
  const std::int64_t cells =
      static_cast<std::int64_t>(f.data.size() * stored.points.size());

  // Chop the trailing cost record in half: the kill arrived mid-append,
  // after the cell's own record was durable.
  const std::uint64_t env = campaign_env_hash(f.net, f.data);
  const std::string path =
      ResultJournal::journal_path(stored.store.dir, env);
  fs::resize_file(path, fs::file_size(path) - kRecordBytes / 2);

  ResultJournal journal(stored.store.dir, env,
                        ResultJournal::Mode::kReadOnly);
  EXPECT_EQ(journal.recovered_cells(), cells);
  EXPECT_EQ(journal.cost_records(), cells - 1);

  // Resume replays every cell — the lost cost degrades to "unmeasured",
  // never to re-execution.
  const CampaignResult resumed = run_campaign(f.net, f.data, stored);
  EXPECT_EQ(resumed.stats.journal_cells_loaded, cells);
  EXPECT_EQ(resumed.stats.inferences, 0);
  expect_same_results(first, resumed);
}

}  // namespace
}  // namespace winofault
