// Tests for the voltage-scaling explorer: budget monotonicity, the Fig 7
// configuration ordering, and grid helpers.
#include <gtest/gtest.h>

#include "core/energy/voltage_explorer.h"
#include "nn/models/zoo.h"

namespace winofault {
namespace {

struct Fixture {
  Network net;
  Dataset data;
};

Fixture make_fixture() {
  Network net("volt", DType::kInt16);
  Rng rng(53);
  int x = net.add_input(Shape{1, 3, 16, 16});
  x = net.add_conv(x, 10, 3, 1, 1, rng);
  x = net.add_conv(x, 10, 3, 1, 1, rng);
  x = net.add_global_avgpool(x);
  x = net.add_flatten(x);
  x = net.add_linear(x, 4, rng);
  net.set_output(x);
  net.calibrate(make_images(net.input_shape(), 6, 4));
  Dataset data = make_teacher_dataset(net, 60, 4, 1.0, 23);
  return Fixture{std::move(net), std::move(data)};
}

// A model whose error cliff sits where this small network feels it: the
// default anchors target the paper's billion-op networks, so tests shift
// the anchor BER up into this network's sensitivity range.
VoltageModel test_voltage_model() {
  VoltageModel model;
  model.log10_ber_anchor = -8.0;  // 1e-8 @ 0.82 V, 1e-4 @ 0.77 V
  return model;
}

TEST(VoltageGrid, DescendsInclusive) {
  const auto grid = voltage_grid(0.9, 0.7, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.9);
  EXPECT_DOUBLE_EQ(grid.back(), 0.7);
  EXPECT_GT(grid[1], grid[2]);
}

TEST(AccuracyVsVoltage, DegradesAsVoltageDrops) {
  const Fixture f = make_fixture();
  const VoltageModel model = test_voltage_model();
  const auto grid = voltage_grid(0.86, 0.74, 7);
  const auto curve = accuracy_vs_voltage(f.net, f.data, model,
                                         ConvPolicy::kDirect, grid, 31);
  ASSERT_EQ(curve.size(), grid.size());
  EXPECT_GT(curve.front().accuracy, 0.9);       // safe at high voltage
  EXPECT_LT(curve.back().accuracy,
            curve.front().accuracy - 0.15);      // broken at low voltage
  EXPECT_LT(curve.front().ber, curve.back().ber);
}

TEST(Explorer, LargerBudgetNeverCostsMoreEnergy) {
  const Fixture f = make_fixture();
  EnergyModel model;
  model.voltage = test_voltage_model();
  ExplorerOptions options;
  options.loss_budgets = {0.01, 0.05, 0.20};
  options.voltage_grid = voltage_grid(0.88, 0.72, 9);
  options.seed = 37;
  const auto points = explore_voltage_scaling(f.net, f.data, model, options);
  ASSERT_EQ(points.size(), 3u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].energy_norm, points[i - 1].energy_norm + 1e-9);
    EXPECT_LE(points[i].chosen_voltage, points[i - 1].chosen_voltage + 1e-9);
  }
  // Voltage scaling must save something vs the nominal baseline.
  EXPECT_LT(points.back().energy_norm, 1.0);
}

TEST(Explorer, WinogradExecutionSavesEnergy) {
  const Fixture f = make_fixture();
  EnergyModel model;
  model.voltage = test_voltage_model();
  // Array sized for this fixture's 10-channel layers.
  model.accel.rows = model.accel.cols = 8;
  ExplorerOptions st;
  st.loss_budgets = {0.05};
  st.voltage_grid = voltage_grid(0.88, 0.72, 9);
  st.seed = 41;

  ExplorerOptions wo_aft = st;  // Winograd runtime, direct decision curve
  wo_aft.exec_policy = ConvPolicy::kWinograd2;
  wo_aft.curve_policy = ConvPolicy::kDirect;

  ExplorerOptions w_aft = wo_aft;  // Winograd-aware decisions
  w_aft.curve_policy = ConvPolicy::kWinograd2;

  const double e_st =
      explore_voltage_scaling(f.net, f.data, model, st)[0].energy_norm;
  const double e_wo =
      explore_voltage_scaling(f.net, f.data, model, wo_aft)[0].energy_norm;
  const double e_w =
      explore_voltage_scaling(f.net, f.data, model, w_aft)[0].energy_norm;
  EXPECT_LT(e_wo, e_st);           // Winograd runtime alone saves energy
  EXPECT_LE(e_w, e_wo + 1e-9);     // awareness can only scale deeper
}

}  // namespace
}  // namespace winofault
