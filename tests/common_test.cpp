// Unit tests for the common substrate: RNG statistical sanity, binomial
// sampler regimes, table emission, env parsing, and running statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "common/csv.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/stats.h"

namespace winofault {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000000007ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, 5 * std::sqrt(expected)) << "bucket " << b;
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.next_gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

// The fault-injection regime: huge trial counts, tiny p -> Poisson branch.
TEST(Rng, BinomialSmallMeanMatchesPoisson) {
  Rng rng(19);
  const std::int64_t trials = 2'000'000'000LL;
  const double p = 1e-9;  // mean = 2
  RunningStats stats;
  for (int i = 0; i < 20000; ++i)
    stats.add(static_cast<double>(rng.binomial(trials, p)));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
  EXPECT_NEAR(stats.variance(), 2.0, 0.15);  // Poisson: var == mean
}

TEST(Rng, BinomialExactRegime) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i)
    stats.add(static_cast<double>(rng.binomial(40, 0.25)));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.variance(), 7.5, 0.3);
}

TEST(Rng, BinomialLargeMeanNormalApprox) {
  Rng rng(29);
  RunningStats stats;
  const std::int64_t trials = 1'000'000;
  const double p = 0.001;  // mean 1000
  for (int i = 0; i < 5000; ++i)
    stats.add(static_cast<double>(rng.binomial(trials, p)));
  EXPECT_NEAR(stats.mean(), 1000.0, 2.5);
  EXPECT_NEAR(stats.stddev(), std::sqrt(999.0), 2.0);
}

TEST(Rng, BinomialEdgeCases) {
  Rng rng(31);
  EXPECT_EQ(rng.binomial(0, 0.5), 0);
  EXPECT_EQ(rng.binomial(100, 0.0), 0);
  EXPECT_EQ(rng.binomial(100, 1.0), 100);
  EXPECT_EQ(rng.binomial(-5, 0.5), 0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.next() == child.next();
  EXPECT_LT(same, 2);
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"x"});  // short row is padded
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\nx,\n");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, AlignedContainsHeaderRule) {
  Table t({"col", "value"});
  t.add_row({"r1", "3.14"});
  const std::string s = t.to_aligned();
  EXPECT_NE(s.find("col"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt_sci(0.000321, 1), "3.2e-04");
}

TEST(Env, ParsesAndFallsBack) {
  ::setenv("WF_TEST_INT", "42", 1);
  ::setenv("WF_TEST_BAD", "xyz", 1);
  ::setenv("WF_TEST_BOOL", "true", 1);
  ::setenv("WF_TEST_DBL", "2.5", 1);
  EXPECT_EQ(env_int("WF_TEST_INT", 7), 42);
  EXPECT_EQ(env_int("WF_TEST_BAD", 7), 7);
  EXPECT_EQ(env_int("WF_TEST_UNSET_XYZ", 7), 7);
  EXPECT_TRUE(env_bool("WF_TEST_BOOL", false));
  EXPECT_DOUBLE_EQ(env_double("WF_TEST_DBL", 0.0), 2.5);
  EXPECT_EQ(env_string("WF_TEST_UNSET_XYZ", "d"), "d");
}

TEST(Stats, RunningMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);
}

TEST(Stats, LineFitRecoversSlope) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 7.0);
  }
  const LineFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(Stats, PearsonSigns) {
  std::vector<double> xs = {1, 2, 3, 4}, up = {2, 4, 6, 8},
                      down = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-9);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-9);
}

}  // namespace
}  // namespace winofault
