// Flight-recorder history ring guarantees (core/service/history):
//   (a) the ring retains exactly the newest `depth` samples — wraparound
//       overwrites the oldest in place, never reorders survivors;
//   (b) window(last_n) returns the newest min(n, size) samples oldest
//       first, across the wrap boundary;
//   (c) depth/interval are clamped to sane minimums, and total_recorded()
//       counts every record() including the overwritten ones.
// The ring is pure state + arithmetic — tests drive it with synthetic
// samples, no sampler thread or clock involved.
#include <gtest/gtest.h>

#include <vector>

#include "core/service/history.h"

namespace winofault {
namespace {

HistorySample sample_at(std::int64_t t) {
  HistorySample s;
  s.t_us = t;
  s.wall_ms = t / 1000;
  telemetry::SeriesSample series;
  series.name = "test_series";
  series.type = 'g';
  series.value = t;
  s.series.push_back(series);
  return s;
}

std::vector<std::int64_t> times(const std::vector<HistorySample>& samples) {
  std::vector<std::int64_t> out;
  for (const HistorySample& s : samples) out.push_back(s.t_us);
  return out;
}

TEST(HistoryRing, FillsToDepthThenWrapsOverOldest) {
  HistoryRing ring(4, 5);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.window().empty());

  for (std::int64_t t = 1; t <= 3; ++t) ring.record(sample_at(t));
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(times(ring.window()), (std::vector<std::int64_t>{1, 2, 3}));

  // Crossing depth: the oldest samples fall away one at a time and the
  // survivors stay in record order.
  for (std::int64_t t = 4; t <= 10; ++t) ring.record(sample_at(t));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_recorded(), 10);
  EXPECT_EQ(times(ring.window()), (std::vector<std::int64_t>{7, 8, 9, 10}));
}

TEST(HistoryRing, WindowLastNIsNewestSuffixOldestFirst) {
  HistoryRing ring(5, 5);
  for (std::int64_t t = 1; t <= 8; ++t) ring.record(sample_at(t));
  // Retained: 4..8. last_n selects the newest suffix of that.
  EXPECT_EQ(times(ring.window(2)), (std::vector<std::int64_t>{7, 8}));
  EXPECT_EQ(times(ring.window(5)),
            (std::vector<std::int64_t>{4, 5, 6, 7, 8}));
  // Asking for more than retained returns everything retained.
  EXPECT_EQ(times(ring.window(100)),
            (std::vector<std::int64_t>{4, 5, 6, 7, 8}));
  // 0 = all retained.
  EXPECT_EQ(times(ring.window(0)),
            (std::vector<std::int64_t>{4, 5, 6, 7, 8}));
}

TEST(HistoryRing, SamplesCarrySeriesPayloadThroughTheWrap) {
  HistoryRing ring(2, 5);
  for (std::int64_t t = 1; t <= 3; ++t) ring.record(sample_at(t));
  const std::vector<HistorySample> window = ring.window();
  ASSERT_EQ(window.size(), 2u);
  ASSERT_EQ(window[0].series.size(), 1u);
  EXPECT_EQ(window[0].series[0].name, "test_series");
  EXPECT_EQ(window[0].series[0].value, 2);
  EXPECT_EQ(window[1].series[0].value, 3);
}

TEST(HistoryRing, DepthAndIntervalClampToOne) {
  HistoryRing ring(0, 0);
  EXPECT_EQ(ring.depth(), 1u);
  EXPECT_EQ(ring.interval_s(), 1);
  ring.record(sample_at(1));
  ring.record(sample_at(2));
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.total_recorded(), 2);
  EXPECT_EQ(times(ring.window()), (std::vector<std::int64_t>{2}));
}

}  // namespace
}  // namespace winofault
