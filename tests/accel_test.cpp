// Tests for the accelerator substrate: systolic cycle model, voltage/BER
// model, and energy accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "accel/energy_model.h"
#include "accel/systolic.h"
#include "accel/voltage_model.h"

namespace winofault {
namespace {

ConvDesc conv3(std::int64_t c, std::int64_t hw) {
  ConvDesc desc;
  desc.in_c = c;
  desc.in_h = hw;
  desc.in_w = hw;
  desc.out_c = c;
  return desc;
}

TEST(Systolic, WinogradIsFasterOnThreeByThree) {
  const SystolicConfig config;
  const ConvDesc desc = conv3(64, 32);
  const LayerTiming direct = simulate_conv(config, desc, ConvPolicy::kDirect);
  const LayerTiming wg2 = simulate_conv(config, desc, ConvPolicy::kWinograd2);
  const LayerTiming wg4 = simulate_conv(config, desc, ConvPolicy::kWinograd4);
  EXPECT_LT(wg2.total_cycles, direct.total_cycles);
  EXPECT_LT(wg4.compute_cycles, wg2.compute_cycles)
      << "F(4,3) multiplies less than F(2,3)";
  EXPECT_GT(wg2.transform_cycles, 0);
  EXPECT_EQ(direct.transform_cycles, 0);
}

TEST(Systolic, WinogradFallsBackForUnsupportedShapes) {
  const SystolicConfig config;
  ConvDesc pointwise = conv3(64, 16);
  pointwise.kh = pointwise.kw = 1;
  pointwise.pad = 0;
  const LayerTiming direct =
      simulate_conv(config, pointwise, ConvPolicy::kDirect);
  const LayerTiming wg = simulate_conv(config, pointwise, ConvPolicy::kWinograd2);
  EXPECT_EQ(direct.total_cycles, wg.total_cycles);
}

TEST(Systolic, CyclesScaleWithWork) {
  const SystolicConfig config;
  const LayerTiming small = simulate_conv(config, conv3(16, 16), ConvPolicy::kDirect);
  const LayerTiming large = simulate_conv(config, conv3(32, 32), ConvPolicy::kDirect);
  EXPECT_GT(large.total_cycles, 4 * small.total_cycles);
}

TEST(Systolic, NetworkRuntimeSumsLayers) {
  const SystolicConfig config;
  const std::vector<ConvDesc> descs = {conv3(16, 16), conv3(16, 16)};
  const double one = network_runtime_seconds(
      config, std::span<const ConvDesc>(descs.data(), 1), ConvPolicy::kDirect);
  const double two = network_runtime_seconds(config, descs, ConvPolicy::kDirect);
  EXPECT_NEAR(two, 2.0 * one, 1e-12);
  EXPECT_GT(one, 0.0);
}

TEST(VoltageModel, ReproducesPaperAnchors) {
  const VoltageModel model;
  EXPECT_NEAR(std::log10(model.ber_at(0.82)), -12.0, 1e-9);
  EXPECT_NEAR(std::log10(model.ber_at(0.77)), -8.0, 1e-9);
  // Monotone: lower voltage, more errors.
  EXPECT_GT(model.ber_at(0.75), model.ber_at(0.80));
  // Nominal voltage: negligible.
  EXPECT_EQ(model.ber_at(0.90), 0.0);
}

TEST(VoltageModel, VoltageForBerInvertsBerAt) {
  const VoltageModel model;
  for (const double ber : {1e-11, 1e-9, 1e-8}) {
    const double v = model.voltage_for_ber(ber);
    EXPECT_NEAR(model.ber_at(v), ber, ber * 1e-6);
  }
  EXPECT_DOUBLE_EQ(model.voltage_for_ber(0.0), model.v_nom);
}

TEST(VoltageModel, PowerDropsWithVoltage) {
  const VoltageModel model;
  EXPECT_GT(model.power_w(0.9), model.power_w(0.8));
  EXPECT_GT(model.power_w(0.8), model.power_w(0.7));
  // Dynamic scaling ~ V^2: 0.8/0.9 => ~0.79x dynamic.
  const double p_nom = model.power_w(model.v_nom);
  EXPECT_NEAR(p_nom, model.dynamic_power_nom_w + model.leakage_power_nom_w,
              1e-12);
}

TEST(EnergyModel, WinogradSavesEnergyAtEqualVoltage) {
  EnergyModel model;
  const std::vector<ConvDesc> descs = {conv3(32, 32), conv3(32, 32)};
  const double st = model.inference_energy_j(descs, ConvPolicy::kDirect, 0.9);
  const double wg = model.inference_energy_j(descs, ConvPolicy::kWinograd2, 0.9);
  EXPECT_LT(wg, st);
  // And lowering voltage saves more.
  const double wg_low =
      model.inference_energy_j(descs, ConvPolicy::kWinograd2, 0.8);
  EXPECT_LT(wg_low, wg);
}

}  // namespace
}  // namespace winofault
