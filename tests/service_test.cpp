// Resident-service guarantees (core/service):
//   (a) a campaign submitted to winofaultd over the socket returns results
//       bit-identical to a direct in-process CampaignRunner run;
//   (b) warm state is shared across submissions: the second identical
//       submission builds zero goldens, and a store-enabled pair resumes
//       from the journal (partial-then-complete) instead of restarting;
//   (c) the scheduler is FIFO per client and round-robin across clients;
//   (d) cancel stops a running campaign cooperatively (partial result,
//       deferred cells) and discards a queued one;
//   (e) drain finishes the backlog, spills warm goldens to their stores,
//       and refuses new work;
//   (f) the protocol rejects malformed requests, unknown models, and
//       client/daemon environment-hash skew without touching any result.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/iofault/iofault.h"
#include "common/rng.h"
#include "common/telemetry/telemetry.h"
#include "core/campaign/campaign.h"
#include "core/service/client.h"
#include "core/service/protocol.h"
#include "core/service/scheduler.h"
#include "core/service/server.h"
#include "core/store/handle_cache.h"
#include "core/store/hash.h"
#include "nn/dataset.h"

namespace winofault {
namespace {

// Cancel/progress tests size their workload in flip@op replay trials
// (e.g. trials=300 keeps a campaign running long enough to cancel).
// Permanent registry models collapse replay to a golden lookup, so pin
// the built-in model; the registry CI leg exercises the daemon through
// fault_models_test's protocol round-trip instead.
const bool kBuiltinModelPinned = [] {
  unsetenv("WINOFAULT_FAULT_MODEL");
  return true;
}();

}  // namespace
namespace {

namespace fs = std::filesystem;

struct Fixture {
  Network net;
  Dataset data;
};

// Deterministic function of (images, weight_seed) — shared by the direct
// runs and the server-side builder below, mirroring how bench clients and
// the daemon rebuild one environment from a ModelEnv.
Fixture make_fixture(int images = 8, std::uint64_t weight_seed = 83) {
  Network net("service", DType::kInt16);
  Rng rng(weight_seed);
  int x = net.add_input(Shape{1, 3, 12, 12});
  x = net.add_conv(x, 8, 3, 1, 1, rng);
  x = net.add_maxpool(x, 2, 2);
  x = net.add_conv(x, 12, 3, 1, 1, rng);
  x = net.add_global_avgpool(x);
  x = net.add_flatten(x);
  x = net.add_linear(x, 5, rng);
  net.set_output(x);
  net.calibrate(make_images(net.input_shape(), 3, 19));
  Dataset data = make_teacher_dataset(net, images, 5, 0.9, 27);
  return Fixture{std::move(net), std::move(data)};
}

ModelEnvBuilder test_env_builder() {
  return [](const ModelEnv& env, Network* net, Dataset* data,
            std::string* error) {
    if (env.model != "testnet") {
      if (error != nullptr) *error = "unknown model '" + env.model + "'";
      return false;
    }
    Fixture f = make_fixture(env.images, env.seed);
    *net = std::move(f.net);
    *data = std::move(f.data);
    return true;
  };
}

ModelEnv test_env(int images = 8, std::uint64_t seed = 83) {
  ModelEnv env;
  env.model = "testnet";
  env.images = images;
  env.seed = seed;
  return env;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "winofault_service_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<CampaignPoint> small_grid(int trials = 2) {
  std::vector<CampaignPoint> points;
  for (const double ber : {1e-7, 3e-6}) {
    for (const ConvPolicy policy :
         {ConvPolicy::kDirect, ConvPolicy::kWinograd2}) {
      CampaignPoint point;
      point.fault.ber = ber;
      point.policy = policy;
      point.seed = 7;
      point.trials = trials;
      points.push_back(std::move(point));
    }
  }
  return points;
}

void expect_same_results(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    EXPECT_DOUBLE_EQ(a.points[p].accuracy, b.points[p].accuracy)
        << "point " << p;
    EXPECT_DOUBLE_EQ(a.points[p].avg_flips, b.points[p].avg_flips)
        << "point " << p;
    EXPECT_EQ(a.points[p].images, b.points[p].images) << "point " << p;
  }
}

// Server bound to a fresh socket with the test builder; joined on scope
// exit.
struct TestServer {
  explicit TestServer(const std::string& dir, int jobs = 1,
                      const std::function<void(ServerOptions&)>& configure =
                          std::function<void(ServerOptions&)>()) {
    ServerOptions options;
    options.socket_path = dir + "/winofaultd.sock";
    options.concurrent_jobs = jobs;
    options.env_builder = test_env_builder();
    if (configure) configure(options);
    server = std::make_unique<ServiceServer>(options);
    std::string error;
    ok = server->start(&error);
    EXPECT_TRUE(ok) << error;
    socket_path = options.socket_path;
  }
  ~TestServer() {
    if (ok) {
      server->request_drain();
      server->wait();
    }
  }
  std::unique_ptr<ServiceServer> server;
  std::string socket_path;
  bool ok = false;
};

// ---- protocol codecs ----

TEST(ServiceProtocol, JsonNumbersRoundTripExactly) {
  const std::string text =
      "{\"a\":1e-09,\"b\":0.72599999999999998,\"c\":18446744073709551615,"
      "\"d\":-42,\"e\":[true,false,null,\"s\\u0041\"]}";
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->find("a")->as_double(), 1e-9);
  EXPECT_DOUBLE_EQ(parsed->find("b")->as_double(), 0.726);
  EXPECT_EQ(parsed->find("c")->as_uint(), 18446744073709551615ULL);
  EXPECT_EQ(parsed->find("d")->as_int(), -42);
  // dump -> parse -> dump is a fixed point.
  const std::string dumped = parsed->dump();
  const auto reparsed = Json::parse(dumped);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->dump(), dumped);
  EXPECT_EQ(reparsed->find("e")->elements().at(3).as_string(), "sA");

  EXPECT_FALSE(Json::parse("{\"unterminated\":").has_value());
  EXPECT_FALSE(Json::parse("{} trailing").has_value());
  EXPECT_FALSE(Json::parse("nope").has_value());
}

TEST(ServiceProtocol, CampaignSpecRoundTripPreservesPointHashes) {
  CampaignSpec spec;
  spec.threads = 3;
  spec.golden_capacity = 17;
  spec.store.dir = "/tmp/some/store";
  spec.store.cell_budget = 9;
  spec.store.golden_disk_budget = 123456789;
  CampaignPoint a;
  a.fault.ber = 3.7e-7;
  a.fault.mode = InjectionMode::kNeuronLevel;
  a.policy = ConvPolicy::kWinograd2;
  a.seed = 0xdeadbeefcafef00dULL;
  a.trials = 5;
  a.tag = "round\ntrip\"";
  CampaignPoint b;
  b.fault.ber = 1e-9;
  b.fault.only_kind = OpKind::kAdd;
  b.fault.fault_free_layer = 2;
  b.fault.protection[1] = ProtectionSet(0.25, 0.5);
  b.fault.protection[3] = ProtectionSet(1.0, 0.0, 77);
  b.reuse_golden = false;
  b.max_expected_flips = 123.5;
  spec.points = {a, b};

  const Json encoded = encode_campaign_spec(spec);
  const auto reparsed = Json::parse(encoded.dump());
  ASSERT_TRUE(reparsed.has_value());
  CampaignSpec decoded;
  std::string error;
  ASSERT_TRUE(decode_campaign_spec(*reparsed, &decoded, &error)) << error;
  ASSERT_EQ(decoded.points.size(), spec.points.size());
  for (std::size_t i = 0; i < spec.points.size(); ++i) {
    // The point hash covers every result-determining field, so hash
    // equality IS semantic round-trip fidelity.
    EXPECT_EQ(campaign_point_hash(decoded.points[i]),
              campaign_point_hash(spec.points[i]))
        << "point " << i;
  }
  EXPECT_EQ(decoded.threads, 3);
  EXPECT_EQ(decoded.golden_capacity, 17u);
  EXPECT_EQ(decoded.store.dir, "/tmp/some/store");
  EXPECT_EQ(decoded.store.cell_budget, 9);
  EXPECT_EQ(decoded.store.golden_disk_budget, 123456789u);
  EXPECT_FALSE(decoded.points[1].reuse_golden);
  EXPECT_EQ(decoded.points[0].tag, "round\ntrip\"");
}

// ---- (a) bit-identity ----

TEST(Service, SubmittedCampaignIsBitIdenticalToDirectRun) {
  const Fixture f = make_fixture();
  CampaignSpec spec;
  spec.points = small_grid();
  const CampaignResult direct = run_campaign(f.net, f.data, spec);

  const std::string dir = fresh_dir("bit_identity");
  TestServer ts(dir);
  ServiceClient client;
  std::string error;
  ASSERT_TRUE(client.connect(ts.socket_path, &error)) << error;
  ModelEnv env = test_env();
  env.env_hash = campaign_env_hash(f.net, f.data);
  // Progress events are best-effort (the streamer collapses intermediate
  // snapshots, and a fast campaign can finish before the first one ships
  // — the cancel test pins down streaming on a heavy campaign); only the
  // final result is contractual.
  const auto outcome = client.submit_and_wait("test", env, spec);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.state, "done");
  expect_same_results(direct, outcome.result);
}

// ---- (b) warm cross-submission state ----

TEST(Service, SecondSubmissionServesGoldensFromWarmTier) {
  const std::string dir = fresh_dir("warm");
  TestServer ts(dir);
  CampaignSpec spec;
  spec.points = small_grid();
  const ModelEnv env = test_env();

  ServiceClient client;
  std::string error;
  ASSERT_TRUE(client.connect(ts.socket_path, &error)) << error;
  const auto cold = client.submit_and_wait("test", env, spec);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_GT(cold.result.stats.golden_builds, 0);

  const auto warm = client.submit_and_wait("test", env, spec);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.result.stats.golden_builds, 0);
  EXPECT_GT(warm.result.stats.golden_hits, 0);
  expect_same_results(cold.result, warm.result);
}

TEST(Service, PartialThenCompleteResumesFromJournalAcrossSubmissions) {
  const Fixture f = make_fixture();
  CampaignSpec clean;
  clean.points = small_grid();
  const CampaignResult reference = run_campaign(f.net, f.data, clean);

  const std::string dir = fresh_dir("partial_resume");
  const std::string store_dir = dir + "/store";
  TestServer ts(dir);
  ServiceClient client;
  std::string error;
  ASSERT_TRUE(client.connect(ts.socket_path, &error)) << error;

  // Submission 1: budgeted (the daemon-side analogue of a fig driver run
  // under WINOFAULT_CELL_BUDGET) — must defer, not fail.
  CampaignSpec budgeted;
  budgeted.points = small_grid();
  budgeted.store.dir = store_dir;
  budgeted.store.cell_budget = 5;
  const auto partial = client.submit_and_wait("test", test_env(), budgeted);
  ASSERT_TRUE(partial.ok) << partial.error;
  EXPECT_GT(partial.result.stats.cells_deferred, 0);
  EXPECT_EQ(partial.result.stats.journal_cells_written, 5);

  // Submission 2: same spec, no budget — must RESUME from the journal
  // (cells loaded, only the remainder executed), not restart.
  CampaignSpec full = budgeted;
  full.store.cell_budget = 0;
  const auto complete = client.submit_and_wait("test", test_env(), full);
  ASSERT_TRUE(complete.ok) << complete.error;
  EXPECT_EQ(complete.result.stats.cells_deferred, 0);
  EXPECT_EQ(complete.result.stats.journal_cells_loaded, 5);
  expect_same_results(reference, complete.result);

  // Third submission: everything journaled, nothing executes.
  const auto replay = client.submit_and_wait("test", test_env(), full);
  ASSERT_TRUE(replay.ok) << replay.error;
  EXPECT_EQ(replay.result.stats.inferences, 0);
  expect_same_results(reference, replay.result);
}

// ---- (c) scheduler fairness ----

TEST(ServiceScheduler, RoundRobinAcrossClientsFifoWithin) {
  Scheduler scheduler;
  const auto job = [](const std::string& client, const std::string& id) {
    auto j = std::make_shared<ServiceJob>();
    j->client = client;
    j->id = id;
    return j;
  };
  ASSERT_EQ(EnqueueResult::kAccepted, scheduler.enqueue(job("alice", "a1")));
  ASSERT_EQ(EnqueueResult::kAccepted, scheduler.enqueue(job("alice", "a2")));
  ASSERT_EQ(EnqueueResult::kAccepted, scheduler.enqueue(job("alice", "a3")));
  ASSERT_EQ(EnqueueResult::kAccepted, scheduler.enqueue(job("bob", "b1")));
  ASSERT_EQ(EnqueueResult::kAccepted, scheduler.enqueue(job("bob", "b2")));
  std::vector<std::string> order;
  for (int i = 0; i < 5; ++i) order.push_back(scheduler.next()->id);
  EXPECT_EQ(order,
            (std::vector<std::string>{"a1", "b1", "a2", "b2", "a3"}));
  scheduler.drain();
  EXPECT_EQ(EnqueueResult::kDraining, scheduler.enqueue(job("alice", "a4")));
  EXPECT_EQ(scheduler.next(), nullptr);
}

TEST(ServiceScheduler, CancelledQueuedJobIsDiscarded) {
  Scheduler scheduler;
  auto a = std::make_shared<ServiceJob>();
  a->client = "c";
  a->id = "a";
  auto b = std::make_shared<ServiceJob>();
  b->client = "c";
  b->id = "b";
  ASSERT_EQ(EnqueueResult::kAccepted, scheduler.enqueue(a));
  ASSERT_EQ(EnqueueResult::kAccepted, scheduler.enqueue(b));
  a->finish(JobState::kCancelled, CampaignResult(), "cancelled");
  EXPECT_EQ(scheduler.next()->id, "b");
  EXPECT_EQ(scheduler.queued(), 0u);
}

// ---- (d) cancel ----

TEST(Service, CancelStopsRunningCampaignWithPartialResult) {
  const std::string dir = fresh_dir("cancel");
  TestServer ts(dir);
  CampaignSpec spec;
  spec.points = small_grid(/*trials=*/300);  // heavy: many replays per cell

  // Streamer connection: submit and read until the first progress event
  // proves the campaign is running.
  ServiceClient submitter;
  std::string error;
  ASSERT_TRUE(submitter.connect(ts.socket_path, &error)) << error;
  std::string job_id;  // filled at the accepted event, before any progress
  std::atomic<bool> cancelled_sent{false};
  const auto outcome = submitter.submit_and_wait(
      "test", test_env(), spec,
      [&](const CampaignProgress&) {
        if (cancelled_sent.exchange(true)) return;
        // First progress event: cancel from a second connection.
        ServiceClient canceller;
        std::string cancel_error;
        ASSERT_TRUE(canceller.connect(ts.socket_path, &cancel_error))
            << cancel_error;
        Json request = Json::object();
        request.set("op", Json::str("cancel"));
        request.set("job", Json::str(job_id));
        const auto response = canceller.request(request, &cancel_error);
        ASSERT_TRUE(response.has_value()) << cancel_error;
        EXPECT_TRUE(response->find("ok")->as_bool());
      },
      &job_id);
  ASSERT_TRUE(cancelled_sent.load());
  EXPECT_TRUE(outcome.ok) << outcome.error;  // cancelled carries results
  EXPECT_EQ(outcome.state, "cancelled");
  EXPECT_GT(outcome.result.stats.cells_deferred, 0);
}

// ---- (e) drain ----

TEST(Service, DrainFlushesWarmGoldensAndRefusesNewWork) {
  const std::string dir = fresh_dir("drain");
  const std::string store_dir = dir + "/store";
  auto ts = std::make_unique<TestServer>(dir);
  CampaignSpec spec;
  spec.points = small_grid();
  spec.store.dir = store_dir;
  ServiceClient client;
  std::string error;
  ASSERT_TRUE(client.connect(ts->socket_path, &error)) << error;
  const auto outcome = client.submit_and_wait("test", test_env(), spec);
  ASSERT_TRUE(outcome.ok) << outcome.error;

  Json drain = Json::object();
  drain.set("op", Json::str("drain"));
  const auto response = client.request(drain, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_TRUE(response->find("ok")->as_bool());
  EXPECT_GT(response->find("goldens_flushed")->as_int(), 0);
  ts->server->wait();

  // Goldens actually reached the tier-2 store…
  int shards = 0;
  for (const auto& entry : fs::directory_iterator(store_dir)) {
    shards += entry.path().extension() == ".shard";
  }
  EXPECT_GT(shards, 0);
  // …and the socket is gone: a fresh daemon can bind it cleanly.
  EXPECT_FALSE(fs::exists(ts->socket_path));
  ts.reset();
}

// ---- (f) rejection paths ----

TEST(Service, RejectsUnknownModelMalformedJsonAndHashSkew) {
  const std::string dir = fresh_dir("reject");
  TestServer ts(dir);
  CampaignSpec spec;
  spec.points = small_grid();

  ServiceClient client;
  std::string error;
  ASSERT_TRUE(client.connect(ts.socket_path, &error)) << error;
  ModelEnv unknown = test_env();
  unknown.model = "not-a-model";
  const auto bad_model = client.submit_and_wait("test", unknown, spec);
  EXPECT_FALSE(bad_model.ok);
  EXPECT_NE(bad_model.error.find("unknown model"), std::string::npos)
      << bad_model.error;

  ModelEnv skewed = test_env();
  skewed.env_hash = 0x1234567890abcdefULL;  // not what the build hashes to
  const auto bad_hash = client.submit_and_wait("test", skewed, spec);
  EXPECT_FALSE(bad_hash.ok);
  EXPECT_NE(bad_hash.error.find("hash mismatch"), std::string::npos)
      << bad_hash.error;

  // Raw malformed line -> error response, connection stays usable.
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, ts.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string garbage = "this is not json\n{\"op\":\"ping\"}\n";
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));
  std::string received;
  char chunk[4096];
  while (received.find('\n') == std::string::npos ||
         received.find('\n') == received.size() - 1) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    received.append(chunk, static_cast<std::size_t>(n));
    if (std::count(received.begin(), received.end(), '\n') >= 2) break;
  }
  ::close(fd);
  EXPECT_NE(received.find("malformed"), std::string::npos) << received;
  EXPECT_NE(received.find("\"pid\""), std::string::npos) << received;
}

// ---- concurrency ----

TEST(Service, TwoConcurrentClientsGetIdenticalCorrectResults) {
  const Fixture f = make_fixture();
  CampaignSpec spec;
  spec.points = small_grid();
  const CampaignResult direct = run_campaign(f.net, f.data, spec);

  const std::string dir = fresh_dir("concurrent");
  TestServer ts(dir, /*jobs=*/2);
  ServiceClient::SubmitOutcome outcomes[2];
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      ServiceClient client;
      std::string error;
      if (!client.connect(ts.socket_path, &error)) {
        outcomes[c].error = error;
        return;
      }
      outcomes[c] = client.submit_and_wait("client-" + std::to_string(c),
                                           test_env(), spec);
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < 2; ++c) {
    ASSERT_TRUE(outcomes[c].ok) << outcomes[c].error;
    expect_same_results(direct, outcomes[c].result);
  }
}

// ---- (g) residency hardening + chaos ----

// Installs a fault schedule for one scope and always clears it afterwards.
class ScopedChaos {
 public:
  explicit ScopedChaos(const std::string& spec) {
    std::string error;
    auto parsed = iofault::FaultSchedule::parse(spec, &error);
    EXPECT_TRUE(parsed.has_value()) << error;
    iofault::set_schedule(std::move(parsed));
  }
  ~ScopedChaos() { iofault::set_schedule(std::nullopt); }
};

TEST(Service, IdleSessionTtlEvictionSpillsGoldensToStore) {
  const std::string dir = fresh_dir("ttl");
  const std::string store_dir = dir + "/store";
  TestServer ts(dir, /*jobs=*/1, [](ServerOptions& o) {
    o.session_idle_ttl_ms = 150;
    o.housekeeping_interval_ms = 25;
  });
  CampaignSpec spec;
  spec.points = small_grid();
  spec.store.dir = store_dir;
  ServiceClient client;
  std::string error;
  ASSERT_TRUE(client.connect(ts.socket_path, &error)) << error;
  const auto outcome = client.submit_and_wait("test", test_env(), spec);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(ts.server->sessions(), 1u);

  // Housekeeping must flush the idle session within a few TTL periods.
  // The cache empties before the stat increments (separate locks), so
  // poll both — checking sessions() alone races the counter update.
  for (int i = 0; i < 200 && (ts.server->sessions() != 0 ||
                              ts.server->stats().sessions_ttl_evicted < 1);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  EXPECT_EQ(ts.server->sessions(), 0u);
  EXPECT_GE(ts.server->stats().sessions_ttl_evicted, 1);
  // Warmth degraded to the disk tier, not vanished: the goldens landed as
  // shards, and an identical resubmission restores instead of rebuilding.
  int shards = 0;
  for (const auto& entry : fs::directory_iterator(store_dir)) {
    shards += entry.path().extension() == ".shard";
  }
  EXPECT_GT(shards, 0);
  const auto warm = client.submit_and_wait("test", test_env(), spec);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.result.stats.golden_builds, 0);
  expect_same_results(outcome.result, warm.result);
}

TEST(Service, JobTableGcForgetsOldestTerminalJobs) {
  const std::string dir = fresh_dir("job_gc");
  TestServer ts(dir, /*jobs=*/1, [](ServerOptions& o) {
    o.max_finished_jobs = 2;
  });
  CampaignSpec spec;
  spec.points = small_grid(/*trials=*/1);
  ServiceClient client;
  std::string error;
  ASSERT_TRUE(client.connect(ts.socket_path, &error)) << error;
  std::vector<std::string> ids;
  for (int i = 0; i < 3; ++i) {
    // Distinct specs (different seed) so the submissions are three jobs,
    // not dedup candidates.
    CampaignSpec distinct = spec;
    distinct.points[0].seed = 100 + i;
    std::string id;
    const auto outcome =
        client.submit_and_wait("test", test_env(), distinct, {}, &id);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    ids.push_back(id);
  }
  const auto status_of = [&](const std::string& id) {
    Json request = Json::object();
    request.set("op", Json::str("status"));
    request.set("job", Json::str(id));
    const auto response = client.request(request, &error);
    EXPECT_TRUE(response.has_value()) << error;
    const Json* err = response->find("error");
    return err == nullptr ? std::string() : err->as_string();
  };
  // The GC bound is 2: the oldest terminal job is forgotten, the two
  // youngest stay addressable. The executor retires a job just after the
  // client's done event, so poll briefly.
  bool forgotten = false;
  for (int i = 0; i < 200 && !forgotten; ++i) {
    forgotten = status_of(ids[0]).find("unknown job") != std::string::npos;
    if (!forgotten) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(forgotten);
  EXPECT_EQ(status_of(ids[1]), "");
  EXPECT_EQ(status_of(ids[2]), "");
}

TEST(Service, QueueBoundRejectsWithTypedOverloadedError) {
  const std::string dir = fresh_dir("overload");
  // One executor, one queued job per client; the first build blocks until
  // released so the queue state is deterministic.
  std::atomic<bool> building{false};
  std::atomic<bool> release{false};
  TestServer ts(dir, /*jobs=*/1, [&](ServerOptions& o) {
    o.max_queued_per_client = 1;
    o.env_builder = [&](const ModelEnv& env, Network* net, Dataset* data,
                        std::string* err) {
      building = true;
      while (!release) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      return test_env_builder()(env, net, data, err);
    };
  });
  CampaignSpec spec;
  spec.points = small_grid(/*trials=*/1);

  // Job 1 occupies the executor (blocked inside the session build).
  std::thread first([&] {
    ServiceClient client;
    std::string error;
    ASSERT_TRUE(client.connect(ts.socket_path, &error)) << error;
    const auto outcome = client.submit_and_wait("alice", test_env(), spec);
    EXPECT_TRUE(outcome.ok) << outcome.error;
  });
  for (int i = 0; i < 400 && !building; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(building.load());

  // Job 2 fills alice's queue slot. Distinct seed: dedup must not collapse
  // it onto job 1.
  CampaignSpec queued = spec;
  queued.points[0].seed = 999;
  std::thread second([&] {
    ServiceClient client;
    std::string error;
    ASSERT_TRUE(client.connect(ts.socket_path, &error)) << error;
    const auto outcome = client.submit_and_wait("alice", test_env(), queued);
    EXPECT_TRUE(outcome.ok) << outcome.error;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // Job 3 exceeds the bound: typed rejection, not a transport error and
  // not a hang.
  CampaignSpec excess = spec;
  excess.points[0].seed = 1000;
  ServiceClient client;
  std::string error;
  ASSERT_TRUE(client.connect(ts.socket_path, &error)) << error;
  const auto rejected = client.submit_and_wait("alice", test_env(), excess);
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error_code, "overloaded");
  EXPECT_FALSE(rejected.transport_error);
  EXPECT_NE(rejected.error.find("overloaded"), std::string::npos)
      << rejected.error;

  release = true;
  first.join();
  second.join();
  EXPECT_GE(ts.server->stats().jobs_rejected, 1);
}

TEST(Service, IdenticalConcurrentSubmissionDedupsOntoTheLiveJob) {
  const std::string dir = fresh_dir("dedup");
  std::atomic<bool> building{false};
  std::atomic<bool> release{false};
  TestServer ts(dir, /*jobs=*/1, [&](ServerOptions& o) {
    o.env_builder = [&](const ModelEnv& env, Network* net, Dataset* data,
                        std::string* err) {
      building = true;
      while (!release) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      return test_env_builder()(env, net, data, err);
    };
  });
  CampaignSpec spec;
  spec.points = small_grid();

  std::string first_id;
  ServiceClient::SubmitOutcome first_outcome;
  std::thread first([&] {
    ServiceClient client;
    std::string error;
    ASSERT_TRUE(client.connect(ts.socket_path, &error)) << error;
    first_outcome =
        client.submit_and_wait("alice", test_env(), spec, {}, &first_id);
  });
  for (int i = 0; i < 400 && !building; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(building.load());

  // An identical (env, spec) submission — a client retrying after a lost
  // connection — lands on the live job instead of executing twice.
  std::string second_id;
  ServiceClient::SubmitOutcome second_outcome;
  std::thread second([&] {
    ServiceClient client;
    std::string error;
    ASSERT_TRUE(client.connect(ts.socket_path, &error)) << error;
    second_outcome =
        client.submit_and_wait("bob", test_env(), spec, {}, &second_id);
  });
  for (int i = 0; i < 400 && ts.server->stats().jobs_deduped == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  release = true;
  first.join();
  second.join();
  ASSERT_TRUE(first_outcome.ok) << first_outcome.error;
  ASSERT_TRUE(second_outcome.ok) << second_outcome.error;
  EXPECT_EQ(first_id, second_id);
  EXPECT_EQ(ts.server->stats().jobs_deduped, 1);
  expect_same_results(first_outcome.result, second_outcome.result);
}

TEST(Service, SubmitWithRetrySurvivesInjectedConnectionDrop) {
  const Fixture f = make_fixture();
  CampaignSpec spec;
  spec.points = small_grid();
  const CampaignResult direct = run_campaign(f.net, f.data, spec);

  const std::string dir = fresh_dir("retry_drop");
  TestServer ts(dir);
  // The first client-side send dies under the message — the submit
  // request never reaches the daemon. submit_with_retry reconnects,
  // resubmits, and completes; the caller sees one successful submission.
  ScopedChaos chaos("5:drop@send:client:*#1");
  ServiceClient client;
  ServiceClient::RetryPolicy policy;
  policy.backoff_ms = 10;
  const auto outcome = client.submit_with_retry(
      ts.socket_path, "test", test_env(), spec, policy);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_GE(outcome.attempts, 2);
  expect_same_results(direct, outcome.result);
  ASSERT_NE(iofault::schedule(), nullptr);
  EXPECT_EQ(iofault::schedule()->injections(), 1);
}

TEST(Service, RetryAfterMidStreamDropDedupsOntoTheRunningJob) {
  const std::string dir = fresh_dir("retry_dedup");
  // The first build blocks until the dedup hit is observed, so the first
  // job is reliably still live when the retry resubmits.
  std::atomic<bool> release{false};
  TestServer ts(dir, /*jobs=*/1, [&](ServerOptions& o) {
    o.env_builder = [&](const ModelEnv& env, Network* net, Dataset* data,
                        std::string* err) {
      while (!release) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      return test_env_builder()(env, net, data, err);
    };
  });
  CampaignSpec spec;
  spec.points = small_grid();
  std::thread releaser([&] {
    for (int i = 0; i < 2000 && ts.server->stats().jobs_deduped == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    release = true;
  });
  // The first response read dies after the submit reached the daemon: the
  // job is live when the retry resubmits, so idempotent-resubmit dedup
  // must land the retry on that job — the campaign executes once.
  ScopedChaos chaos("5:drop@recv:client:*#1");
  ServiceClient client;
  ServiceClient::RetryPolicy policy;
  policy.backoff_ms = 10;
  const auto outcome = client.submit_with_retry(
      ts.socket_path, "test", test_env(), spec, policy);
  releaser.join();
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_GE(outcome.attempts, 2);
  EXPECT_EQ(ts.server->stats().jobs_deduped, 1);
  EXPECT_EQ(ts.server->stats().jobs_submitted, 1);
}

// ---- (g) telemetry: metrics verb + observation-only contract ----

// The daemon's `metrics` verb serves the cross-tier registry in Prometheus
// text exposition, and running it with tracing enabled changes no result
// bit. After a stored submission the exposition must span the pool,
// campaign, golden, store, and service tiers with well over 20 distinct
// series (the acceptance bar).
TEST(Service, MetricsVerbServesCrossTierPrometheusText) {
  const Fixture f = make_fixture();
  CampaignSpec spec;
  spec.points = small_grid();
  spec.threads = 2;  // engage the pool tier even on a 1-core runner
  const CampaignResult direct = run_campaign(f.net, f.data, spec);

  const std::string dir = fresh_dir("metrics_verb");
  const std::string trace_path = dir + "/trace.json";
  telemetry::set_trace_path(trace_path);
  TestServer ts(dir);
  ServiceClient client;
  std::string error;
  ASSERT_TRUE(client.connect(ts.socket_path, &error)) << error;

  CampaignSpec stored = spec;
  stored.store.dir = dir + "/store";
  const auto outcome =
      client.submit_and_wait("test", test_env(), stored);
  telemetry::set_trace_path("");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  expect_same_results(direct, outcome.result);

  Json request = Json::object();
  request.set("op", Json::str("metrics"));
  ServiceClient scrape;
  ASSERT_TRUE(scrape.connect(ts.socket_path, &error)) << error;
  const std::optional<Json> response = scrape.request(request, &error);
  ASSERT_TRUE(response.has_value()) << error;
  const Json* ok = response->find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->as_bool(false));
  const Json* metrics = response->find("metrics");
  ASSERT_NE(metrics, nullptr);
  const std::string& text = metrics->as_string();

  // One representative series per tier.
  EXPECT_NE(text.find("winofault_pool_jobs_total"), std::string::npos);
  EXPECT_NE(text.find("winofault_campaign_waves_total"), std::string::npos);
  EXPECT_NE(text.find("winofault_golden_builds_total"), std::string::npos);
  EXPECT_NE(text.find("winofault_store_journal_appends_total"),
            std::string::npos);
  EXPECT_NE(text.find("winofault_service_jobs_submitted_total"),
            std::string::npos);
  EXPECT_NE(text.find("winofault_service_queue_latency_us"),
            std::string::npos);
  EXPECT_NE(text.find("winofault_service_jobs_queued"), std::string::npos);
  EXPECT_NE(text.find("winofault_service_sessions_active"),
            std::string::npos);

  // Distinct series = non-comment exposition lines.
  std::size_t series_lines = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start && text[start] != '#') ++series_lines;
    start = end + 1;
  }
  EXPECT_GE(series_lines, 20u);
}

TEST(Service, HistoryVerbServesSampledTimeSeries) {
  const std::string dir = fresh_dir("history_verb");
  TestServer ts(dir, 1, [](ServerOptions& options) {
    options.history_depth = 8;
    options.history_interval_s = 1;
  });
  ServiceClient client;
  std::string error;
  ASSERT_TRUE(client.connect(ts.socket_path, &error)) << error;

  // One real submission so the sampled series carry daemon activity.
  CampaignSpec spec;
  spec.points = small_grid();
  spec.threads = 1;
  const auto outcome = client.submit_and_wait("test", test_env(), spec);
  ASSERT_TRUE(outcome.ok) << outcome.error;

  // The sampler records its first snapshot at startup, so at least one
  // sample exists no matter how fast the test ran.
  Json request = Json::object();
  request.set("op", Json::str("history"));
  request.set("last", Json::integer(4));
  request.set("prefix", Json::str("winofault_service_"));
  ServiceClient scrape;
  ASSERT_TRUE(scrape.connect(ts.socket_path, &error)) << error;
  const std::optional<Json> response = scrape.request(request, &error);
  ASSERT_TRUE(response.has_value()) << error;
  const Json* ok = response->find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->as_bool(false));
  EXPECT_EQ(response->find("interval_s")->as_int(), 1);
  EXPECT_EQ(response->find("depth")->as_int(), 8);
  EXPECT_GE(response->find("recorded")->as_int(), 1);

  const Json* samples = response->find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_TRUE(samples->is_array());
  ASSERT_GE(samples->elements().size(), 1u);
  ASSERT_LE(samples->elements().size(), 4u);
  for (const Json& sample : samples->elements()) {
    EXPECT_GE(sample.find("t_us")->as_int(), 0);
    EXPECT_GT(sample.find("wall_ms")->as_int(), 0);
    const Json* series = sample.find("series");
    ASSERT_NE(series, nullptr);
    ASSERT_TRUE(series->is_object());
    // The prefix filter held: every key is a service-tier series.
    for (const auto& [key, value] : series->members()) {
      EXPECT_EQ(key.rfind("winofault_service_", 0), 0u) << key;
    }
    // Scrape gauges refresh before each sample, so the queue-depth gauge
    // exists from the very first snapshot.
    EXPECT_NE(series->find("winofault_service_jobs_queued"), nullptr);
  }
}

}  // namespace
}  // namespace winofault
