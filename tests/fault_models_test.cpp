// Fault-model registry guarantees (fault/models):
//   (a) the spec grammar accepts exactly the documented model menu and
//       rejects malformed or semantically invalid specs with an error;
//   (b) apply_fault_kind matches a scratch bit-twiddling reference,
//       including two's-complement sign extension of stuck-at results;
//   (c) every registry model is bit-identical between cached replay
//       (reuse_golden) and scratch execution — transient weight/accum
//       models re-sample per trial, permanent ones ride the overlay;
//   (d) permanent overlays are deterministic in (model, seed) and persist
//       across every image and trial of a point;
//   (e) the storage bridge renders the documented iofault rules.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/iofault/iofault.h"
#include "conv/engine.h"
#include "core/campaign/campaign.h"
#include "core/service/protocol.h"
#include "fault/bitflip.h"
#include "fault/fault_model.h"
#include "fault/models/model_spec.h"
#include "fault/models/overlay.h"
#include "fault/models/storage_bridge.h"
#include "nn/models/zoo.h"

namespace winofault {
namespace {

struct Fixture {
  Network net;
  Dataset data;
};

Fixture make_fixture(int images = 8) {
  Network net("fault-models", DType::kInt16);
  Rng rng(151);
  int x = net.add_input(Shape{1, 3, 10, 10});
  x = net.add_conv(x, 6, 3, 1, 1, rng);
  x = net.add_conv(x, 8, 3, 1, 1, rng);
  x = net.add_global_avgpool(x);
  x = net.add_flatten(x);
  x = net.add_linear(x, 4, rng);
  net.set_output(x);
  net.calibrate(make_images(net.input_shape(), 3, 33));
  Dataset data = make_teacher_dataset(net, images, 4, 0.9, 61);
  return Fixture{std::move(net), std::move(data)};
}

TEST(FaultModelSpecTest, GrammarAccepts) {
  struct Case {
    const char* spec;
    FaultModelKind kind;
    FaultTarget target;
    FaultPersistence persistence;
    double arg;
  };
  const Case cases[] = {
      {"flip@op", FaultModelKind::kFlip, FaultTarget::kOp,
       FaultPersistence::kTransient, 0.0},
      {"toggle@op", FaultModelKind::kToggle, FaultTarget::kOp,
       FaultPersistence::kTransient, 0.0},
      {"flip@op#trans", FaultModelKind::kFlip, FaultTarget::kOp,
       FaultPersistence::kTransient, 0.0},
      {"stuck0@weight", FaultModelKind::kStuck0, FaultTarget::kWeight,
       FaultPersistence::kTransient, 0.0},
      {"stuck1@weight#perm", FaultModelKind::kStuck1, FaultTarget::kWeight,
       FaultPersistence::kPermanent, 0.0},
      {"stuck0@weight#permanent", FaultModelKind::kStuck0,
       FaultTarget::kWeight, FaultPersistence::kPermanent, 0.0},
      {"stuck1(0.001)@weight#perm", FaultModelKind::kStuck1,
       FaultTarget::kWeight, FaultPersistence::kPermanent, 0.001},
      {"toggle@accum", FaultModelKind::kToggle, FaultTarget::kAccum,
       FaultPersistence::kTransient, 0.0},
      {"stuck0@accum#perm", FaultModelKind::kStuck0, FaultTarget::kAccum,
       FaultPersistence::kPermanent, 0.0},
      {"slow(5)@store", FaultModelKind::kSlow, FaultTarget::kStore,
       FaultPersistence::kTransient, 5.0},
      {"flip@store#perm", FaultModelKind::kFlip, FaultTarget::kStore,
       FaultPersistence::kPermanent, 0.0},
      {"medium@store", FaultModelKind::kMedium, FaultTarget::kStore,
       FaultPersistence::kTransient, 0.0},
  };
  for (const Case& c : cases) {
    std::string error;
    const auto parsed = FaultModelSpec::parse(c.spec, &error);
    ASSERT_TRUE(parsed.has_value()) << c.spec << ": " << error;
    EXPECT_EQ(parsed->kind, c.kind) << c.spec;
    EXPECT_EQ(parsed->target, c.target) << c.spec;
    EXPECT_EQ(parsed->persistence, c.persistence) << c.spec;
    EXPECT_DOUBLE_EQ(parsed->arg, c.arg) << c.spec;
    // to_string round-trips to the identical spec.
    const auto again = FaultModelSpec::parse(parsed->to_string(), &error);
    ASSERT_TRUE(again.has_value()) << parsed->to_string() << ": " << error;
    EXPECT_EQ(*again, *parsed) << c.spec;
  }
  EXPECT_TRUE(FaultModelSpec::parse("flip@op")->is_default());
  EXPECT_FALSE(FaultModelSpec::parse("toggle@op")->is_default());
  EXPECT_TRUE(FaultModelSpec::parse("stuck0@weight#perm")->uses_overlay());
  EXPECT_TRUE(FaultModelSpec::parse("stuck0@accum#perm")->uses_overlay());
  EXPECT_FALSE(FaultModelSpec::parse("stuck0@weight")->uses_overlay());
  EXPECT_EQ(FaultModelSpec::parse("stuck0@weight#perm")->slug(),
            "stuck0_weight_perm");
}

TEST(FaultModelSpecTest, GrammarRejects) {
  const char* cases[] = {
      "",                        // empty
      "flip",                    // no target
      "flip@",                   // empty target
      "@op",                     // no kind
      "bogus@op",                // unknown kind
      "flip@datapath",           // unknown target
      "stuck0@op",               // stuck-at needs a storage cell
      "stuck1@op#perm",          // ditto (and @op cannot be permanent)
      "flip@op#perm",            // op faults are transient by definition
      "flip(3)@op",              // @op takes no arg
      "flip(x)@weight",          // non-numeric arg
      "flip(@weight",            // unterminated arg
      "stuck0@weight#sometimes", // unknown persistence
      "stuck0(0.1)@weight",      // arg only valid with #perm
      "stuck0(2.0)@weight#perm", // defect probability out of (0, 1]
      "stuck0(-1)@weight#perm",  // ditto
      "slow(5)@weight",          // storage kind off the storage tier
      "medium@op",               // ditto
      "stuck0@store",            // stuck-at is not a storage model
      "flip@op trailing",        // trailing garbage
      "flip@op#trans#perm",      // double persistence
  };
  for (const char* spec : cases) {
    std::string error;
    EXPECT_FALSE(FaultModelSpec::parse(spec, &error).has_value()) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

TEST(FaultModelSpecTest, ApplyFaultKindMatchesScratchReference) {
  constexpr int kWidth = 16;
  const std::int64_t values[] = {0, 1, -1, 12345, -12345, 32767, -32768};
  for (const std::int64_t v : values) {
    for (int bit = 0; bit < kWidth; ++bit) {
      // Scratch reference: operate on the raw 16-bit pattern, then
      // sign-extend through int16_t.
      const std::uint16_t raw = static_cast<std::uint16_t>(v);
      const auto extend = [](std::uint16_t r) {
        return static_cast<std::int64_t>(static_cast<std::int16_t>(r));
      };
      EXPECT_EQ(apply_fault_kind(FaultModelKind::kStuck0, v, bit, kWidth),
                extend(static_cast<std::uint16_t>(raw & ~(1u << bit))))
          << v << " bit " << bit;
      EXPECT_EQ(apply_fault_kind(FaultModelKind::kStuck1, v, bit, kWidth),
                extend(static_cast<std::uint16_t>(raw | (1u << bit))))
          << v << " bit " << bit;
      EXPECT_EQ(apply_fault_kind(FaultModelKind::kFlip, v, bit, kWidth),
                flip_bit(v, bit, kWidth));
      EXPECT_EQ(apply_fault_kind(FaultModelKind::kToggle, v, bit, kWidth),
                flip_bit(v, bit, kWidth));
      // Stuck-at faults are idempotent; flips are involutions.
      const std::int64_t s0 =
          apply_fault_kind(FaultModelKind::kStuck0, v, bit, kWidth);
      EXPECT_EQ(apply_fault_kind(FaultModelKind::kStuck0, s0, bit, kWidth),
                s0);
      const std::int64_t fl =
          apply_fault_kind(FaultModelKind::kFlip, v, bit, kWidth);
      EXPECT_EQ(apply_fault_kind(FaultModelKind::kFlip, fl, bit, kWidth), v);
    }
  }
  // Sign extension: sticking the sign bit of a positive value goes
  // negative, clearing it on a negative value goes positive.
  EXPECT_LT(apply_fault_kind(FaultModelKind::kStuck1, 5, 15, 16), 0);
  EXPECT_GE(apply_fault_kind(FaultModelKind::kStuck0, -5, 15, 16), 0);
}

EvalOptions model_options(const char* spec, double ber, ConvPolicy policy,
                          bool reuse_golden) {
  EvalOptions options;
  options.fault.ber = ber;
  options.fault.model = *FaultModelSpec::parse(spec);
  options.policy = policy;
  options.seed = 17;
  options.trials = 2;
  options.reuse_golden = reuse_golden;
  return options;
}

// (c): every registry model agrees bit-exactly between cached replay and
// scratch forwards, under both conv policies (the scratch path exercises
// ExecContext/FaultSession::apply, the replay path plan()+forward_replay).
TEST(FaultModelCampaignTest, ReplayMatchesScratchForEveryModel) {
  const Fixture f = make_fixture();
  const char* specs[] = {"stuck0@weight", "stuck1@weight", "toggle@weight",
                         "toggle@accum",  "stuck0@accum",
                         "stuck0@weight#perm", "stuck1@weight#perm",
                         "toggle@accum#perm", "stuck1@accum#perm"};
  for (const char* spec : specs) {
    for (const ConvPolicy policy :
         {ConvPolicy::kDirect, ConvPolicy::kWinograd2}) {
      const EvalResult replay = evaluate(
          f.net, f.data, model_options(spec, 1e-3, policy, true));
      const EvalResult scratch = evaluate(
          f.net, f.data, model_options(spec, 1e-3, policy, false));
      EXPECT_DOUBLE_EQ(replay.accuracy, scratch.accuracy)
          << spec << " " << conv_policy_name(policy);
      EXPECT_DOUBLE_EQ(replay.avg_flips, scratch.avg_flips)
          << spec << " " << conv_policy_name(policy);
    }
  }
}

// The explicit default spec is bit-identical to the implicit one — the
// registry cannot perturb seed semantics.
TEST(FaultModelCampaignTest, ExplicitFlipAtOpMatchesDefault) {
  const Fixture f = make_fixture();
  EvalOptions with_spec = model_options("flip@op", 1e-6, ConvPolicy::kDirect,
                                        true);
  EvalOptions implicit = with_spec;
  implicit.fault.model = FaultModelSpec{};
  const EvalResult a = evaluate(f.net, f.data, with_spec);
  const EvalResult b = evaluate(f.net, f.data, implicit);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_DOUBLE_EQ(a.avg_flips, b.avg_flips);
}

// (d): overlays are a pure function of (model, rate, seed, geometry), and
// a permanent point's flips are exactly the overlay's site count in every
// trial of every image — the defect set persists, nothing re-samples.
TEST(FaultModelCampaignTest, PermanentOverlayDeterministicAndPersistent) {
  const Fixture f = make_fixture();
  FaultConfig config;
  config.ber = 5e-4;
  config.model = *FaultModelSpec::parse("stuck0@weight#perm");
  const FaultOverlay a = build_fault_overlay(f.net, config, 17);
  const FaultOverlay b = build_fault_overlay(f.net, config, 17);
  ASSERT_FALSE(a.empty());  // rate chosen to sample at least one defect
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.site_count, b.site_count);
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (std::size_t p = 0; p < a.weights.size(); ++p) {
    ASSERT_EQ(a.weights[p].size(), b.weights[p].size());
    for (std::size_t i = 0; i < a.weights[p].size(); ++i) {
      EXPECT_EQ(a.weights[p][i].index, b.weights[p][i].index);
      EXPECT_EQ(a.weights[p][i].bit, b.weights[p][i].bit);
    }
  }
  const FaultOverlay other = build_fault_overlay(f.net, config, 18);
  EXPECT_NE(a.digest, other.digest);

  // Persistence across images and trials: avg flips per inference is
  // EXACTLY the overlay site count (no per-trial sampling contributes).
  EvalOptions options;
  options.fault = config;
  options.seed = 17;
  options.trials = 3;
  const EvalResult result = evaluate(f.net, f.data, options);
  EXPECT_DOUBLE_EQ(result.avg_flips, static_cast<double>(a.site_count));
}

// An overlay honors fault_free_layer: the spared layer samples no defects.
TEST(FaultModelCampaignTest, OverlayHonorsFaultFreeLayer) {
  const Fixture f = make_fixture();
  FaultConfig config;
  config.ber = 2e-2;  // dense enough that every layer would otherwise hit
  config.fault_free_layer = 1;
  config.model = *FaultModelSpec::parse("stuck1@weight#perm");
  const FaultOverlay overlay = build_fault_overlay(f.net, config, 21);
  ASSERT_FALSE(overlay.empty());
  EXPECT_TRUE(overlay.weights[1].empty());
  EXPECT_FALSE(overlay.weights[0].empty());
}

// Wire round-trip: a daemon must execute exactly the model the client
// sent. Non-default models travel as a "fault_model" field; default points
// omit it and decode to the BUILT-IN model (not the daemon's env default),
// so old clients against new daemons keep seed semantics.
TEST(FaultModelProtocolTest, CampaignSpecRoundTripsModels) {
  CampaignSpec spec;
  CampaignPoint modeled;
  modeled.fault.ber = 1e-6;
  modeled.fault.model = *FaultModelSpec::parse("stuck1(0.01)@weight#perm");
  spec.points.push_back(modeled);
  CampaignPoint plain;
  plain.fault.ber = 2e-6;
  plain.fault.model = FaultModelSpec{};
  spec.points.push_back(plain);

  const Json wire = encode_campaign_spec(spec);
  CampaignSpec decoded;
  std::string error;
  ASSERT_TRUE(decode_campaign_spec(wire, &decoded, &error)) << error;
  ASSERT_EQ(decoded.points.size(), 2u);
  EXPECT_EQ(decoded.points[0].fault.model, modeled.fault.model);
  EXPECT_TRUE(decoded.points[1].fault.model.is_default());
  // The default point carries no "fault_model" member on the wire.
  EXPECT_EQ(wire.dump().find("\"fault_model\""),
            wire.dump().rfind("\"fault_model\""));

  // A malformed model in a request fails decode loudly.
  const std::string bad_wire = [&] {
    std::string text = wire.dump();
    const std::size_t at = text.find("stuck1");
    return text.replace(at, 6, "bogus0");
  }();
  const std::optional<Json> bad = Json::parse(bad_wire);
  ASSERT_TRUE(bad.has_value());
  CampaignSpec rejected;
  EXPECT_FALSE(decode_campaign_spec(*bad, &rejected, &error));
  EXPECT_NE(error.find("fault_model"), std::string::npos) << error;
}

TEST(StorageBridgeTest, RendersDocumentedRules) {
  const std::pair<const char*, const char*> cases[] = {
      {"slow(5)@store", "slow(5)@any#1+"},
      {"slow@store", "slow(5)@any#1+"},  // default delay
      {"flip@store", "flip@read#1"},
      {"flip@store#perm", "flip@read#1+"},
      {"medium@store", "eio@read#1"},
      {"medium@store#perm", "eio@read#1+"},
  };
  for (const auto& [spec, rule] : cases) {
    const auto parsed = FaultModelSpec::parse(spec);
    ASSERT_TRUE(parsed.has_value()) << spec;
    EXPECT_EQ(storage_fault_rule(*parsed), rule) << spec;
  }
}

TEST(StorageBridgeTest, InstallsParseableSchedule) {
  std::string error;
  EXPECT_TRUE(install_storage_fault_model(
      *FaultModelSpec::parse("flip@store"), &error))
      << error;
  EXPECT_NE(iofault::schedule(), nullptr);
  iofault::set_schedule(std::nullopt);  // do not leak into other tests
}

}  // namespace
}  // namespace winofault
