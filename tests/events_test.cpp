// Structured event-log guarantees (common/telemetry/events):
//   (a) every emitted line is one valid JSON object carrying the envelope
//       keys (ts_ms, pid, event) plus the caller's fields in order;
//   (b) string fields are escaped so hostile values (quotes, newlines,
//       control bytes) can never break the NDJSON framing;
//   (c) the recorder toggles cleanly: disabled means no file and no
//       events_enabled() cost path, re-enabling appends to the same log;
//   (d) enabling the recorder never perturbs computation — it is
//       observation-only by construction (nothing reads events back).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/telemetry/events.h"
#include "core/service/protocol.h"

namespace winofault {
namespace {

namespace fs = std::filesystem;

class EventsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "winofault_events_test.ndjson";
    fs::remove(path_);
    telemetry::set_events_path(path_);
  }
  void TearDown() override {
    telemetry::set_events_path("");
    fs::remove(path_);
  }

  std::vector<std::string> lines() const {
    std::vector<std::string> out;
    std::ifstream in(path_);
    for (std::string line; std::getline(in, line);) out.push_back(line);
    return out;
  }

  std::string path_;
};

TEST_F(EventsTest, LinesAreValidJsonWithEnvelopeAndFields) {
  ASSERT_TRUE(telemetry::events_enabled());
  telemetry::emit_event("job_submitted",
                        {{"job", "j-1"}, {"client", "cli"}});
  telemetry::emit_event("chaos_injected", {{"fault", "torn_write"}},
                        {{"rule", 2}, {"match", 5}});
  telemetry::emit_event("job_done", {{"job", "j-1"}});

  const std::vector<std::string> all = lines();
  ASSERT_EQ(all.size(), 3u);
  const char* expected_types[] = {"job_submitted", "chaos_injected",
                                  "job_done"};
  for (std::size_t i = 0; i < all.size(); ++i) {
    const std::optional<Json> doc = Json::parse(all[i]);
    ASSERT_TRUE(doc.has_value()) << "line " << i << ": " << all[i];
    ASSERT_TRUE(doc->is_object());
    const Json* ts = doc->find("ts_ms");
    const Json* pid = doc->find("pid");
    const Json* event = doc->find("event");
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(event, nullptr);
    EXPECT_GT(ts->as_int(), 0);
    EXPECT_GT(pid->as_int(), 0);
    EXPECT_EQ(event->as_string(), expected_types[i]);
  }
  const std::optional<Json> chaos = Json::parse(all[1]);
  ASSERT_TRUE(chaos.has_value());
  EXPECT_EQ(chaos->find("fault")->as_string(), "torn_write");
  EXPECT_EQ(chaos->find("rule")->as_int(), 2);
  EXPECT_EQ(chaos->find("match")->as_int(), 5);
}

TEST_F(EventsTest, HostileStringValuesNeverBreakFraming) {
  telemetry::emit_event(
      "session_evicted",
      {{"env", "quote\" backslash\\ newline\n tab\t ctrl\x01 end"}});
  telemetry::emit_event("job_done", {{"job", "j-2"}});
  const std::vector<std::string> all = lines();
  ASSERT_EQ(all.size(), 2u);  // the embedded newline was escaped, not raw
  const std::optional<Json> doc = Json::parse(all[0]);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("env")->as_string(),
            "quote\" backslash\\ newline\n tab\t ctrl\x01 end");
  EXPECT_TRUE(Json::parse(all[1]).has_value());
}

TEST_F(EventsTest, DisabledRecorderEmitsNothingReEnableAppends) {
  telemetry::emit_event("job_done", {{"job", "j-a"}});
  ASSERT_EQ(lines().size(), 1u);

  telemetry::set_events_path("");
  EXPECT_FALSE(telemetry::events_enabled());
  telemetry::emit_event("job_done", {{"job", "dropped"}});
  EXPECT_EQ(lines().size(), 1u);

  // Re-enabling appends — a daemon restart keeps the log's history.
  telemetry::set_events_path(path_);
  telemetry::emit_event("job_done", {{"job", "j-b"}});
  const std::vector<std::string> all = lines();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(Json::parse(all[0])->find("job")->as_string(), "j-a");
  EXPECT_EQ(Json::parse(all[1])->find("job")->as_string(), "j-b");
}

TEST_F(EventsTest, EventWithNoExtraFieldsIsStillAnObject) {
  telemetry::emit_event("drain_requested");
  const std::vector<std::string> all = lines();
  ASSERT_EQ(all.size(), 1u);
  const std::optional<Json> doc = Json::parse(all[0]);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("event")->as_string(), "drain_requested");
}

}  // namespace
}  // namespace winofault
