// Tests for the Decomposable Winograd Method extension: 5x5 convolutions
// decomposed into 3x3 Winograd sub-problems must match direct 5x5
// convolution bit-for-bit, and the op accounting must show the expected
// multiplication reduction.
#include <gtest/gtest.h>

#include "conv/dwm.h"
#include "conv/engine.h"
#include "test_util.h"

namespace winofault {
namespace {

using testing::ConvProblem;
using testing::expect_tensors_equal;
using testing::make_problem;

ConvDesc desc_5x5(std::int64_t in_c, std::int64_t hw, std::int64_t out_c,
                  std::int64_t pad) {
  ConvDesc desc;
  desc.in_c = in_c;
  desc.in_h = hw;
  desc.in_w = hw;
  desc.out_c = out_c;
  desc.kh = 5;
  desc.kw = 5;
  desc.pad = pad;
  return desc;
}

TEST(Dwm, SupportsOnly5x5Stride1) {
  EXPECT_TRUE(dwm_supports(desc_5x5(1, 8, 1, 2)));
  EXPECT_TRUE(dwm_supports(desc_5x5(1, 8, 1, 1)));
  ConvDesc three;
  three.kh = three.kw = 3;
  EXPECT_FALSE(dwm_supports(three));
  ConvDesc strided = desc_5x5(1, 8, 1, 2);
  strided.stride = 2;
  EXPECT_FALSE(dwm_supports(strided));
  ConvDesc nopad = desc_5x5(1, 8, 1, 0);
  EXPECT_FALSE(dwm_supports(nopad));
}

class DwmExactness
    : public ::testing::TestWithParam<std::tuple<int, DType, int>> {};

TEST_P(DwmExactness, MatchesDirect5x5) {
  const int m = std::get<0>(GetParam());
  const DType dtype = std::get<1>(GetParam());
  const int pad = std::get<2>(GetParam());
  Rng rng(811 + m + pad);
  const ConvDesc desc = desc_5x5(3, 12, 4, pad);
  const ConvProblem p = make_problem(rng, desc, dtype);
  const TensorI32 ref = direct_engine().forward(desc, p.data());
  const TensorI32 dwm = dwm_forward(m, desc, p.data());
  expect_tensors_equal(ref, dwm, "dwm vs direct 5x5");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DwmExactness,
    ::testing::Combine(::testing::Values(2, 4),
                       ::testing::Values(DType::kInt8, DType::kInt16),
                       ::testing::Values(1, 2)));

TEST(Dwm, RaggedSpatialSizes) {
  Rng rng(911);
  ConvDesc desc = desc_5x5(2, 11, 3, 2);
  desc.in_w = 7;  // non-square, odd
  const ConvProblem p = make_problem(rng, desc, DType::kInt16);
  expect_tensors_equal(direct_engine().forward(desc, p.data()),
                       dwm_forward(2, desc, p.data()), "ragged dwm");
}

TEST(Dwm, NoBias) {
  Rng rng(912);
  ConvDesc desc = desc_5x5(2, 10, 2, 2);
  desc.has_bias = false;
  const ConvProblem p = make_problem(rng, desc, DType::kInt16);
  expect_tensors_equal(direct_engine().forward(desc, p.data()),
                       dwm_forward(4, desc, p.data()), "no-bias dwm");
}

TEST(Dwm, OpSpaceReducesMuls) {
  const ConvDesc desc = desc_5x5(16, 16, 16, 2);
  const OpSpace direct = direct_engine().op_space(desc, DType::kInt16);
  for (const int m : {2, 4}) {
    const OpSpace dwm = dwm_op_space(m, desc, DType::kInt16);
    EXPECT_LT(dwm.n_mul, direct.n_mul)
        << "DWM F(" << m << ") should multiply less than direct 5x5";
    EXPECT_GT(dwm.n_mul, 0);
    EXPECT_GT(dwm.n_add, 0);
  }
}

}  // namespace
}  // namespace winofault
