// Distributed-campaign guarantees (core/dist):
//   (a) workers cooperating over one store — sequential, concurrent, or
//       with one killed mid-run — assemble results bit-identical to a
//       single-process campaign;
//   (b) stale claims of dead workers are stolen and their buckets
//       re-executed by survivors;
//   (c) merging folds overlapping/duplicate segments into the canonical
//       journal exactly once per cell, and rejects corrupt segments;
//   (d) the cost-bucket partition covers every pending unit exactly once
//       and isolates over-heavy units.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/iofault/iofault.h"
#include "core/campaign/campaign.h"
#include "core/dist/buckets.h"
#include "core/dist/claim_board.h"
#include "core/dist/merge.h"
#include "core/store/hash.h"
#include "core/store/journal.h"
#include "nn/dataset.h"

namespace winofault {
namespace {

namespace fs = std::filesystem;

struct Fixture {
  Network net;
  Dataset data;
};

Fixture make_fixture(int images = 8, std::uint64_t weight_seed = 83) {
  Network net("dist", DType::kInt16);
  Rng rng(weight_seed);
  int x = net.add_input(Shape{1, 3, 12, 12});
  x = net.add_conv(x, 8, 3, 1, 1, rng);
  x = net.add_maxpool(x, 2, 2);
  x = net.add_conv(x, 12, 3, 1, 1, rng);
  x = net.add_global_avgpool(x);
  x = net.add_flatten(x);
  x = net.add_linear(x, 5, rng);
  net.set_output(x);
  net.calibrate(make_images(net.input_shape(), 3, 19));
  Dataset data = make_teacher_dataset(net, images, 5, 0.9, 27);
  return Fixture{std::move(net), std::move(data)};
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "winofault_dist_" + name;
  fs::remove_all(dir);
  return dir;
}

std::vector<CampaignPoint> small_grid() {
  std::vector<CampaignPoint> points;
  for (const double ber : {1e-7, 3e-6}) {
    for (const ConvPolicy policy :
         {ConvPolicy::kDirect, ConvPolicy::kWinograd2}) {
      CampaignPoint point;
      point.fault.ber = ber;
      point.policy = policy;
      point.seed = 7;
      point.trials = 2;
      points.push_back(std::move(point));
    }
  }
  return points;
}

// threads = 1 everywhere in this binary: campaign-level parallel_for stays
// inline, which keeps the fork-based kill test safe (the child never
// depends on pool threads that fork does not clone).
CampaignSpec worker_spec(const std::string& dir, int shard, int shards,
                         const std::string& tag, std::int64_t stale_ms,
                         std::int64_t die_after = 0) {
  CampaignSpec spec;
  spec.points = small_grid();
  spec.threads = 1;
  spec.store.dir = dir;
  spec.store.dist.shard_index = shard;
  spec.store.dist.shard_count = shards;
  spec.store.dist.worker_tag = tag;
  spec.store.dist.claim_stale_ms = stale_ms;
  spec.store.dist.poll_ms = 5;
  spec.store.dist.die_after_cells = die_after;
  return spec;
}

void expect_same_results(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    EXPECT_DOUBLE_EQ(a.points[p].accuracy, b.points[p].accuracy)
        << "point " << p;
    EXPECT_DOUBLE_EQ(a.points[p].avg_flips, b.points[p].avg_flips)
        << "point " << p;
  }
}

int count_segments(const std::string& dir) {
  return static_cast<int>(ResultJournal::list_segments(dir).size());
}

// ---- (a) worker-vs-single-process bit-identity ----

TEST(Dist, SequentialTwoWorkersMatchSingleProcessAndMerge) {
  const Fixture f = make_fixture();
  CampaignSpec plain;
  plain.points = small_grid();
  plain.threads = 1;
  const CampaignResult reference = run_campaign(f.net, f.data, plain);
  const std::int64_t cells =
      static_cast<std::int64_t>(f.data.images.size() * plain.points.size());

  const std::string dir = fresh_dir("seq");
  // Worker 0 runs alone: it claims every bucket and executes everything.
  const CampaignResult r0 =
      run_campaign(f.net, f.data, worker_spec(dir, 0, 2, "wA", 0));
  expect_same_results(reference, r0);
  EXPECT_EQ(r0.stats.dist_cells_executed, cells);
  EXPECT_EQ(r0.stats.journal_cells_written, cells);
  EXPECT_GT(r0.stats.dist_buckets_claimed, 1);
  EXPECT_EQ(r0.stats.dist_cells_healed, 0);

  // Worker 1 arrives late: every bucket is done, so it executes nothing
  // and assembles the full result from worker 0's segment.
  const CampaignResult r1 =
      run_campaign(f.net, f.data, worker_spec(dir, 1, 2, "wB", 60000));
  expect_same_results(reference, r1);
  EXPECT_EQ(r1.stats.dist_cells_executed, 0);
  EXPECT_EQ(r1.stats.dist_cells_recovered, cells);

  // Coordinator merge: segments fold into the canonical journal, claim
  // boards are retired, and a plain store run replays without executing.
  EXPECT_GT(count_segments(dir), 0);
  const MergeStats merge = merge_campaign_segments(dir);
  EXPECT_EQ(merge.cells_merged, cells);
  EXPECT_EQ(merge.segments_rejected, 0);
  EXPECT_EQ(count_segments(dir), 0);

  CampaignSpec stored = plain;
  stored.store.dir = dir;
  const CampaignResult replay = run_campaign(f.net, f.data, stored);
  expect_same_results(reference, replay);
  EXPECT_EQ(replay.stats.inferences, 0);
  EXPECT_EQ(replay.stats.journal_cells_loaded, cells);
}

TEST(Dist, ConcurrentWorkersSplitTheGridAndAgree) {
  const Fixture f = make_fixture();
  CampaignSpec plain;
  plain.points = small_grid();
  plain.threads = 1;
  const CampaignResult reference = run_campaign(f.net, f.data, plain);
  const std::int64_t cells =
      static_cast<std::int64_t>(f.data.images.size() * plain.points.size());

  const std::string dir = fresh_dir("conc");
  CampaignResult r0, r1;
  // Claims never go stale within the test, so every cell executes exactly
  // once across the two workers.
  std::thread t0([&] {
    r0 = run_campaign(f.net, f.data, worker_spec(dir, 0, 2, "wA", 60000));
  });
  std::thread t1([&] {
    r1 = run_campaign(f.net, f.data, worker_spec(dir, 1, 2, "wB", 60000));
  });
  t0.join();
  t1.join();
  expect_same_results(reference, r0);
  expect_same_results(reference, r1);
  EXPECT_EQ(r0.stats.dist_cells_executed + r1.stats.dist_cells_executed,
            cells);
  EXPECT_EQ(r0.stats.dist_buckets_stolen + r1.stats.dist_buckets_stolen, 0);
  EXPECT_EQ(merge_campaign_segments(dir).cells_merged, cells);
}

// ---- (b) mid-run worker death + claim stealing ----

TEST(Dist, DeadWorkerClaimsAreStolenBySurvivor) {
  const Fixture f = make_fixture();
  CampaignSpec plain;
  plain.points = small_grid();
  plain.threads = 1;
  const CampaignResult reference = run_campaign(f.net, f.data, plain);

  const std::string dir = fresh_dir("steal");
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child worker: SIGKILLs itself after 2 cells — claims left behind,
    // segment left with a partial bucket. threads=1 keeps the child off
    // the (unforked) thread pool entirely.
    run_campaign(f.net, f.data, worker_spec(dir, 0, 2, "dead", 400, 2));
    ::_exit(0);  // unreachable: die_after_cells fires first
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Survivor: claims the untouched buckets, then steals the dead worker's
  // stale claim and re-executes its bucket.
  const CampaignResult r1 =
      run_campaign(f.net, f.data, worker_spec(dir, 1, 2, "live", 400));
  expect_same_results(reference, r1);
  EXPECT_GE(r1.stats.dist_buckets_stolen, 1);

  // The dead worker's cells in its unfinished (stolen) bucket exist in two
  // segments — merge keeps exactly one copy of every cell. (Cells of a
  // bucket the dead worker *finished* are not re-executed, so the
  // duplicate count is 1 or 2 depending on where its first bucket
  // boundary fell.)
  const MergeStats merge = merge_campaign_segments(dir);
  EXPECT_EQ(merge.cells_merged,
            static_cast<std::int64_t>(f.data.images.size() *
                                      plain.points.size()));
  EXPECT_GE(merge.cells_duplicate, 1);
  EXPECT_LE(merge.cells_duplicate, 2);
}

TEST(Dist, ClaimBoardProtocol) {
  const std::string dir = fresh_dir("board");
  fs::create_directories(dir);
  ClaimBoard a(dir, 42, "wA", 60000);
  ClaimBoard b(dir, 42, "wB", 60000);

  // Exclusive claims.
  EXPECT_TRUE(a.try_claim(0));
  EXPECT_FALSE(b.try_claim(0));
  EXPECT_TRUE(b.try_claim(1));

  // Fresh claims cannot be stolen.
  EXPECT_FALSE(b.try_steal(0));

  // Stale claims can — by exactly the stealer that wins the rename.
  const std::string claim0 = a.dir() + "/b0.claim";
  fs::last_write_time(claim0, fs::file_time_type::clock::now() -
                                  std::chrono::hours(1));
  EXPECT_TRUE(b.try_steal(0));
  EXPECT_TRUE(b.has_claim(0));

  // Done retires the claim; done buckets are neither claimable nor
  // stealable.
  b.mark_done(0);
  EXPECT_TRUE(a.is_done(0));
  EXPECT_FALSE(a.try_claim(0));
  EXPECT_FALSE(a.try_steal(0));

  // mark_done is safe for an owner whose claim was stolen meanwhile: the
  // marker still lands.
  const std::string claim1 = b.dir() + "/b1.claim";
  fs::last_write_time(claim1, fs::file_time_type::clock::now() -
                                  std::chrono::hours(1));
  EXPECT_TRUE(a.try_steal(1));
  b.mark_done(1);  // b's claim file is now a's — rename still retires it
  EXPECT_TRUE(b.is_done(1));
  a.mark_done(1);  // no claim left: ensures the marker, no crash
  EXPECT_TRUE(a.is_done(1));
}

// ---- (c) segment merge ----

TEST(Dist, MergeDedupsOverlappingSegments) {
  const std::string dir = fresh_dir("merge");
  const std::uint64_t env = 0xabcdef12345678ULL;
  {
    ResultJournal canonical(dir, env);
    canonical.append(JournalCell{11, 0, 1, 5});
  }
  {
    ResultJournal seg(dir, env, ResultJournal::Mode::kAppend, "wA");
    // Overlaps the canonical cell (image 0) and a rival's cell (image 2):
    // duplicates are identical by determinism.
    seg.append(JournalCell{11, 0, 1, 5});
    seg.append(JournalCell{11, 1, 0, 7});
    seg.append(JournalCell{11, 2, 1, 3});
  }
  {
    ResultJournal seg(dir, env, ResultJournal::Mode::kAppend, "wB");
    seg.append(JournalCell{11, 2, 1, 3});
    seg.append(JournalCell{11, 3, 1, 9});
  }

  const MergeStats stats = merge_campaign_segments(dir);
  EXPECT_EQ(stats.segments_merged, 2);
  EXPECT_EQ(stats.cells_merged, 3);      // images 1, 2, 3
  EXPECT_EQ(stats.cells_duplicate, 2);   // image 0 (canonical) + image 2
  EXPECT_EQ(count_segments(dir), 0);

  ResultJournal canonical(dir, env, ResultJournal::Mode::kReadOnly);
  EXPECT_EQ(canonical.recovered_cells(), 4);
  JournalCell cell;
  ASSERT_TRUE(canonical.lookup(11, 2, &cell));
  EXPECT_EQ(cell.correct, 1);
  EXPECT_EQ(cell.flips, 3);
}

TEST(Dist, MergeRejectsCorruptAndTruncatesTornSegments) {
  const std::string dir = fresh_dir("corrupt");
  const std::uint64_t env = 0x1122334455667788ULL;
  fs::create_directories(dir);

  // Garbage bytes under a segment name: rejected and deleted.
  const std::string bad =
      ResultJournal::segment_path(dir, env, "bad");
  std::ofstream(bad, std::ios::binary) << "not a journal at all";

  // A valid segment with a torn trailing record: intact cells merge, the
  // tail is dropped.
  {
    ResultJournal seg(dir, env, ResultJournal::Mode::kAppend, "torn");
    seg.append(JournalCell{5, 0, 1, 2});
    seg.append(JournalCell{5, 1, 1, 4});
  }
  {
    std::ofstream torn(ResultJournal::segment_path(dir, env, "torn"),
                       std::ios::binary | std::ios::app);
    torn << "XYZ";  // half-written record
  }

  const MergeStats stats = merge_campaign_segments(dir);
  EXPECT_EQ(stats.segments_rejected, 1);
  EXPECT_EQ(stats.segments_merged, 1);
  EXPECT_EQ(stats.segments_torn, 1);
  EXPECT_EQ(stats.cells_merged, 2);
  EXPECT_FALSE(fs::exists(bad));

  ResultJournal canonical(dir, env, ResultJournal::Mode::kReadOnly);
  EXPECT_EQ(canonical.recovered_cells(), 2);
  EXPECT_TRUE(canonical.lookup(5, 1));
}

// ---- (c') chaos (common/iofault): merge keeps cells durable under faults

// Installs a fault schedule for one scope and always clears it afterwards.
class ScopedChaos {
 public:
  explicit ScopedChaos(const std::string& spec) {
    std::string error;
    auto parsed = iofault::FaultSchedule::parse(spec, &error);
    EXPECT_TRUE(parsed.has_value()) << error;
    iofault::set_schedule(std::move(parsed));
  }
  ~ScopedChaos() { iofault::set_schedule(std::nullopt); }
};

TEST(Dist, MergeUnderTornCanonicalAppendKeepsSegmentAndSelfHeals) {
  const std::string dir = fresh_dir("chaos_merge_torn");
  const std::uint64_t env = 0x5150;
  {
    ResultJournal seg(dir, env, ResultJournal::Mode::kAppend, "wA");
    seg.append(JournalCell{21, 0, 1, 1});
    seg.append(JournalCell{21, 1, 0, 2});
    seg.append(JournalCell{21, 2, 1, 3});
  }
  {
    // The second canonical append (cell for image 1) tears mid-record:
    // the fold must stop counting, keep the segment — it is the only
    // durable copy of the unfolded cells — and report the journal
    // unwritable rather than pretend the merge finished.
    ScopedChaos chaos("5:torn(20)@write:*.journal#2");
    const MergeStats stats = merge_campaign_segments(dir);
    EXPECT_EQ(stats.journals_unwritable, 1);
    EXPECT_EQ(stats.segments_merged, 0);
    EXPECT_EQ(stats.cells_merged, 1);  // only the append that reached disk
    EXPECT_EQ(count_segments(dir), 1);
  }
  // A later clean merge self-heals: canonical recovery truncates the torn
  // record, the kept segment re-folds, duplicates dedup away.
  const MergeStats clean = merge_campaign_segments(dir);
  EXPECT_EQ(clean.segments_merged, 1);
  EXPECT_EQ(clean.cells_merged, 2);
  EXPECT_EQ(clean.cells_duplicate, 1);
  EXPECT_EQ(count_segments(dir), 0);
  ResultJournal canonical(dir, env, ResultJournal::Mode::kReadOnly);
  EXPECT_EQ(canonical.recovered_cells(), 3);
  EXPECT_TRUE(canonical.lookup(21, 1));
}

TEST(Dist, MergeUnderFsyncEioRetiresNoSegmentUntilDurable) {
  const std::string dir = fresh_dir("chaos_merge_fsync");
  const std::uint64_t env = 0x6001;
  {
    ResultJournal seg(dir, env, ResultJournal::Mode::kAppend, "wB");
    seg.append(JournalCell{31, 0, 1, 4});
    seg.append(JournalCell{31, 1, 1, 6});
  }
  {
    // Every append lands, but the durability barrier before segment
    // retirement fails: the segment must survive (a power cut now would
    // otherwise lose both cells).
    ScopedChaos chaos("5:eio@fsync:*.journal#1");
    const MergeStats stats = merge_campaign_segments(dir);
    EXPECT_EQ(stats.cells_merged, 2);
    EXPECT_EQ(stats.segments_merged, 0);
    EXPECT_EQ(stats.journals_unwritable, 1);
    EXPECT_EQ(count_segments(dir), 1);
  }
  const MergeStats clean = merge_campaign_segments(dir);
  EXPECT_EQ(clean.segments_merged, 1);
  EXPECT_EQ(clean.cells_duplicate, 2);  // both already durable
  EXPECT_EQ(clean.cells_merged, 0);
  EXPECT_EQ(count_segments(dir), 0);
}

TEST(Dist, InjectedClaimLinkFailureReadsAsLosingTheRace) {
  const std::string dir = fresh_dir("chaos_claim");
  fs::create_directories(dir);
  ClaimBoard a(dir, 42, "wA", 60000);
  {
    ScopedChaos chaos("5:eio@link:*.claim#1");
    EXPECT_FALSE(a.try_claim(0));  // injected EIO == someone else won
  }
  // The worker just moves on; the bucket stays claimable and the next
  // attempt (fault passed) succeeds.
  EXPECT_TRUE(a.try_claim(0));
  EXPECT_TRUE(a.has_claim(0));
}

// ---- (d) cost buckets ----

TEST(Dist, CostBucketsCoverEveryUnitOnceAndBalanceWeight) {
  std::vector<double> weights(40);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 + static_cast<double>(i % 5);
  }
  const auto buckets = make_cost_buckets(weights, 8);
  ASSERT_EQ(buckets.size(), 8u);
  std::size_t covered = 0;
  double total = 0.0, max_w = 0.0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    EXPECT_EQ(buckets[b].begin, covered) << "contiguous, in order";
    EXPECT_GT(buckets[b].end, buckets[b].begin);
    covered = buckets[b].end;
    total += buckets[b].weight;
    max_w = std::max(max_w, buckets[b].weight);
  }
  EXPECT_EQ(covered, weights.size());
  EXPECT_DOUBLE_EQ(total, 120.0);  // sum of 40 weights, nothing lost
  EXPECT_LE(max_w, 2.5 * total / 8.0) << "roughly balanced";
}

TEST(Dist, CostBucketsIsolateDestructionAdjacentUnits) {
  // One unit worth ~100x the rest (a destruction-adjacent point) must not
  // drag dozens of cheap units into its bucket.
  std::vector<double> weights(30, 1.0);
  weights[10] = 100.0;
  const auto buckets = make_cost_buckets(weights, 6);
  for (const CostBucket& b : buckets) {
    if (b.begin <= 10 && 10 < b.end) {
      EXPECT_LE(b.end - b.begin, 2u)
          << "heavy unit shares a bucket with at most one neighbour";
    }
  }
  // Degenerate inputs.
  EXPECT_TRUE(make_cost_buckets({}, 4).empty());
  const auto zero = make_cost_buckets(std::vector<double>(12, 0.0), 4);
  ASSERT_EQ(zero.size(), 4u);
  EXPECT_EQ(zero.back().end, 12u);
}

TEST(Dist, BoardKeyTracksPendingSetAndEnvironment) {
  const std::vector<std::uint64_t> cells = {1, 2, 3};
  std::vector<std::uint64_t> reordered = {3, 1, 2};
  const std::uint64_t key = dist_board_key(9, cells, 4);
  EXPECT_EQ(key, dist_board_key(9, reordered, 4)) << "set, not order";
  EXPECT_NE(key, dist_board_key(10, cells, 4)) << "environment";
  EXPECT_NE(key, dist_board_key(9, {1, 2}, 4)) << "pending set";
  EXPECT_NE(key, dist_board_key(9, cells, 5)) << "bucket granularity";
}

// ---- (e) measured-cost ledger through dist ----

// Deterministic cell identity: everything but wall_us (which is measured,
// not derived). Sorting by key makes journals comparable across layouts.
std::vector<JournalCell> sorted_cells(const std::string& path,
                                      std::uint64_t env) {
  std::vector<JournalCell> cells;
  EXPECT_TRUE(ResultJournal::read_cells_from(path, env, 0, &cells));
  std::sort(cells.begin(), cells.end(),
            [](const JournalCell& a, const JournalCell& b) {
              return journal_cell_key(a.point_hash, a.image) <
                     journal_cell_key(b.point_hash, b.image);
            });
  return cells;
}

TEST(Dist, MergedLedgerJournalMatchesSingleProcessAndWeighsMeasured) {
  const Fixture f = make_fixture();
  CampaignSpec plain;
  plain.points = small_grid();
  plain.threads = 1;
  const CampaignResult reference = run_campaign(f.net, f.data, plain);
  const std::int64_t cells =
      static_cast<std::int64_t>(f.data.images.size() * plain.points.size());
  const std::uint64_t env = campaign_env_hash(f.net, f.data);

  // Single-process store run: the canonical journal the dist-merged one
  // must match cell-for-cell.
  CampaignSpec single = plain;
  single.store.dir = fresh_dir("ledger_single");
  run_campaign(f.net, f.data, single);

  // Two sequential workers (as in the first test) + merge.
  const std::string dir = fresh_dir("ledger_dist");
  const CampaignResult r0 =
      run_campaign(f.net, f.data, worker_spec(dir, 0, 2, "wA", 0));
  expect_same_results(reference, r0);
  const CampaignResult r1 =
      run_campaign(f.net, f.data, worker_spec(dir, 1, 2, "wB", 60000));
  expect_same_results(reference, r1);
  const MergeStats merge = merge_campaign_segments(dir);
  EXPECT_EQ(merge.cells_merged, cells);

  // The merged canonical journal is bit-identical to the single-process
  // one in every deterministic field, and carries a cost record per cell.
  const std::vector<JournalCell> merged =
      sorted_cells(ResultJournal::journal_path(dir, env), env);
  const std::vector<JournalCell> direct = sorted_cells(
      ResultJournal::journal_path(single.store.dir, env), env);
  ASSERT_EQ(merged.size(), direct.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].point_hash, direct[i].point_hash) << "cell " << i;
    EXPECT_EQ(merged[i].image, direct[i].image) << "cell " << i;
    EXPECT_EQ(merged[i].correct, direct[i].correct) << "cell " << i;
    EXPECT_EQ(merged[i].flips, direct[i].flips) << "cell " << i;
  }
  {
    ResultJournal canonical(dir, env, ResultJournal::Mode::kReadOnly);
    EXPECT_EQ(canonical.cost_records(), cells);
  }

  // Grow the grid: the next dist run plans buckets from MEASURED costs
  // (the canonical ledger covers the original points; the new point falls
  // back to its scaled estimate) and still executes only the new cells.
  CampaignSpec grown_plain = plain;
  CampaignPoint extra = plain.points.back();
  extra.seed = 31;
  grown_plain.points.push_back(extra);
  const CampaignResult grown_reference =
      run_campaign(f.net, f.data, grown_plain);

  CampaignSpec grown_worker = worker_spec(dir, 0, 2, "wC", 0);
  grown_worker.points = grown_plain.points;
  const std::int64_t new_cells =
      static_cast<std::int64_t>(f.data.images.size());
  const CampaignResult g0 = run_campaign(f.net, f.data, grown_worker);
  expect_same_results(grown_reference, g0);
  EXPECT_EQ(g0.stats.dist_cells_executed, new_cells);

  // A second worker over the same grown grid derives the identical
  // measured-weight bucket plan (same canonical ledger, same fold order):
  // everything is already claimed/done, so it executes nothing.
  CampaignSpec grown_late = worker_spec(dir, 1, 2, "wD", 60000);
  grown_late.points = grown_plain.points;
  const CampaignResult g1 = run_campaign(f.net, f.data, grown_late);
  expect_same_results(grown_reference, g1);
  EXPECT_EQ(g1.stats.dist_cells_executed, 0);

  // Merging the grown segments keeps ledger coverage consistent: every
  // cell present, costs for all of them (old from the first merge, new
  // from wC's segment).
  const MergeStats grown_merge = merge_campaign_segments(dir);
  EXPECT_EQ(grown_merge.cells_merged, new_cells);
  ResultJournal canonical(dir, env, ResultJournal::Mode::kReadOnly);
  EXPECT_EQ(canonical.recovered_cells(), cells + new_cells);
  EXPECT_EQ(canonical.cost_records(), cells + new_cells);
}

TEST(Dist, CostlessSegmentsMergeCleanlyIntoLedgeredCanonical) {
  const Fixture f = make_fixture();
  const std::uint64_t env = campaign_env_hash(f.net, f.data);
  const std::string dir = fresh_dir("ledger_mixed");

  // Phase 1: worker A (ledger on), sole live worker of a 2-shard layout,
  // executes the whole grid; its segment merges into a ledgered canonical.
  CampaignSpec with_ledger = worker_spec(dir, 0, 2, "wA", 0);
  const CampaignResult r0 = run_campaign(f.net, f.data, with_ledger);
  const std::int64_t cells =
      static_cast<std::int64_t>(f.data.images.size() *
                                with_ledger.points.size());
  EXPECT_EQ(r0.stats.dist_cells_executed, cells);
  EXPECT_EQ(merge_campaign_segments(dir).cells_merged, cells);

  // Phase 2: worker B (ledger off) grows the grid by one point — its
  // segment carries the new cells with no cost records.
  CampaignSpec no_ledger = worker_spec(dir, 0, 2, "wB", 0);
  CampaignPoint extra = no_ledger.points.back();
  extra.seed = 57;
  no_ledger.points.push_back(extra);
  no_ledger.store.cost_ledger = false;
  const CampaignResult r1 = run_campaign(f.net, f.data, no_ledger);
  const std::int64_t extra_cells =
      static_cast<std::int64_t>(f.data.images.size());
  EXPECT_EQ(r1.stats.dist_cells_executed, extra_cells);

  // Mixed merge: ledgered cells keep their costs, costless cells stay
  // costless — no cell is lost or duplicated either way.
  const MergeStats merge = merge_campaign_segments(dir);
  EXPECT_EQ(merge.cells_merged, extra_cells);
  EXPECT_EQ(merge.segments_rejected, 0);
  ResultJournal canonical(dir, env, ResultJournal::Mode::kReadOnly);
  EXPECT_EQ(canonical.recovered_cells(), cells + extra_cells);
  EXPECT_EQ(canonical.cost_records(), cells);
}

}  // namespace
}  // namespace winofault
