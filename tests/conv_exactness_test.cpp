// Property suite: integer Winograd convolution (both tile sizes) is
// bit-identical to direct convolution across randomized shapes, paddings,
// tiling edge cases, and both data widths. This is the foundation of the
// whole study — any accuracy difference between ST-Conv and WG-Conv under
// faults is attributable to fault propagation alone.
#include <gtest/gtest.h>

#include "conv/direct_conv.h"
#include "conv/engine.h"
#include "conv/op_count.h"
#include "conv/winograd_conv.h"
#include "conv/winograd_transforms.h"
#include "test_util.h"

namespace winofault {
namespace {

using testing::ConvProblem;
using testing::expect_tensors_equal;
using testing::make_problem;

struct ExactCase {
  std::int64_t in_c, in_h, in_w, out_c, pad;
  DType dtype;
  int m;  // Winograd tile size
};

std::string case_name(const ::testing::TestParamInfo<ExactCase>& info) {
  const ExactCase& c = info.param;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "ic%lld_h%lld_w%lld_oc%lld_p%lld_%s_F%d",
                static_cast<long long>(c.in_c), static_cast<long long>(c.in_h),
                static_cast<long long>(c.in_w), static_cast<long long>(c.out_c),
                static_cast<long long>(c.pad),
                dtype_name(c.dtype), c.m);
  return buf;
}

class WinogradExactness : public ::testing::TestWithParam<ExactCase> {};

TEST_P(WinogradExactness, MatchesDirectBitExact) {
  const ExactCase& c = GetParam();
  Rng rng(0xABCDEF01u + static_cast<std::uint64_t>(c.in_h * 131 + c.in_c));
  ConvDesc desc;
  desc.in_c = c.in_c;
  desc.in_h = c.in_h;
  desc.in_w = c.in_w;
  desc.out_c = c.out_c;
  desc.pad = c.pad;
  const ConvProblem p = make_problem(rng, desc, c.dtype);

  const TensorI32 ref = direct_engine().forward(desc, p.data());
  const TensorI32 wino = winograd_engine(c.m).forward(desc, p.data());
  expect_tensors_equal(ref, wino, "winograd vs direct");
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, WinogradExactness,
    ::testing::Values(
        // Even tiling, both dtypes and tile sizes.
        ExactCase{3, 8, 8, 4, 1, DType::kInt16, 2},
        ExactCase{3, 8, 8, 4, 1, DType::kInt16, 4},
        ExactCase{3, 8, 8, 4, 1, DType::kInt8, 2},
        ExactCase{3, 8, 8, 4, 1, DType::kInt8, 4},
        // Ragged tiling (output not a multiple of m).
        ExactCase{2, 7, 9, 3, 1, DType::kInt16, 2},
        ExactCase{2, 7, 9, 3, 1, DType::kInt16, 4},
        ExactCase{2, 5, 11, 3, 1, DType::kInt8, 4},
        // No padding (valid convolution).
        ExactCase{4, 10, 10, 2, 0, DType::kInt16, 2},
        ExactCase{4, 10, 10, 2, 0, DType::kInt16, 4},
        // Single channel / single output channel edges.
        ExactCase{1, 6, 6, 1, 1, DType::kInt16, 2},
        ExactCase{1, 6, 6, 1, 1, DType::kInt8, 4},
        // Minimum spatial size covering one partial tile.
        ExactCase{2, 3, 3, 2, 1, DType::kInt16, 2},
        ExactCase{2, 3, 3, 2, 1, DType::kInt16, 4},
        // Wider layers resembling the model zoo.
        ExactCase{16, 16, 16, 16, 1, DType::kInt16, 4},
        ExactCase{16, 16, 16, 16, 1, DType::kInt8, 2}),
    case_name);

TEST(WinogradExactness, ManyRandomShapes) {
  Rng rng(0x5eed5eedULL);
  for (int trial = 0; trial < 30; ++trial) {
    ConvDesc desc;
    desc.in_c = 1 + static_cast<std::int64_t>(rng.next_below(6));
    desc.in_h = 3 + static_cast<std::int64_t>(rng.next_below(14));
    desc.in_w = 3 + static_cast<std::int64_t>(rng.next_below(14));
    desc.out_c = 1 + static_cast<std::int64_t>(rng.next_below(6));
    desc.pad = static_cast<std::int64_t>(rng.next_below(2));
    desc.has_bias = rng.bernoulli(0.5);
    const DType dtype = rng.bernoulli(0.5) ? DType::kInt8 : DType::kInt16;
    const int m = rng.bernoulli(0.5) ? 2 : 4;
    const ConvProblem p = make_problem(rng, desc, dtype);
    const TensorI32 ref = direct_engine().forward(desc, p.data());
    const TensorI32 wino = winograd_engine(m).forward(desc, p.data());
    expect_tensors_equal(ref, wino, "random shape winograd vs direct");
  }
}

TEST(WinogradExactness, NoBias) {
  Rng rng(77);
  ConvDesc desc;
  desc.in_c = 3;
  desc.in_h = 9;
  desc.in_w = 9;
  desc.out_c = 5;
  desc.has_bias = false;
  const ConvProblem p = make_problem(rng, desc, DType::kInt16);
  expect_tensors_equal(direct_engine().forward(desc, p.data()),
                       winograd_engine(2).forward(desc, p.data()), "no-bias");
  expect_tensors_equal(direct_engine().forward(desc, p.data()),
                       winograd_engine(4).forward(desc, p.data()), "no-bias");
}

// Extreme operand values exercise the widest internal magnitudes the
// transforms can produce (documented headroom bounds).
TEST(WinogradExactness, SaturatedOperands) {
  for (const DType dtype : {DType::kInt8, DType::kInt16}) {
    for (const int m : {2, 4}) {
      ConvDesc desc;
      desc.in_c = 8;
      desc.in_h = 8;
      desc.in_w = 8;
      desc.out_c = 2;
      Rng rng(9);
      ConvProblem p = make_problem(rng, desc, dtype);
      for (auto& v : p.input.flat()) v = dtype_min(dtype);
      for (auto& v : p.weights.flat()) v = dtype_max(dtype);
      expect_tensors_equal(direct_engine().forward(desc, p.data()),
                           winograd_engine(m).forward(desc, p.data()),
                           "saturated");
    }
  }
}

// The scaled-integer transform matrices must satisfy Gs = s*G exactly:
// verified by checking the defining algebraic identity on a unit impulse —
// convolving a delta input reproduces the (flipped) kernel.
TEST(WinogradTransforms, ImpulseReproducesKernel) {
  for (const int m : {2, 4}) {
    ConvDesc desc;
    desc.in_c = 1;
    desc.in_h = 8;
    desc.in_w = 8;
    desc.out_c = 1;
    desc.pad = 1;
    desc.has_bias = false;
    ConvProblem p;
    p.desc = desc;
    p.dtype = DType::kInt16;
    p.input = TensorI32(desc.in_shape());
    p.weights = TensorI32(desc.weight_shape());
    p.input.at(0, 0, 4, 4) = 1;
    std::int32_t next = 1;
    for (auto& w : p.weights.flat()) w = next++;
    p.acc_scale = 1.0;
    p.out_quant = QuantParams{1.0, DType::kInt16};
    const TensorI32 out = winograd_engine(m).forward(desc, p.data());
    // Cross-correlation of an impulse at (4,4) places kernel value g(ky,kx)
    // at output (4-ky+1, 4-kx+1) for pad 1.
    for (std::int64_t ky = 0; ky < 3; ++ky) {
      for (std::int64_t kx = 0; kx < 3; ++kx) {
        EXPECT_EQ(out.at(0, 0, 5 - ky, 5 - kx), p.weights.at(0, 0, ky, kx));
      }
    }
  }
}

TEST(WinogradPlans, AddCountsMatchMatrices) {
  // F(2,3): B^T rows all have 2 nonzeros -> 1 add per element, two passes of
  // (4+4) elements per row group => 32 input-transform adds.
  EXPECT_EQ(winograd_plan_f2().input_transform_adds(), 32);
  // A^T rows have 3 nonzeros -> 2 adds; (4 cols + 2 rows) * (2+2) = 24.
  EXPECT_EQ(winograd_plan_f2().inverse_transform_adds(), 24);
  // F(4,3): per-row adds of B^T are (2,3,3,3,3,2)=16; (6+6)*16 = 192.
  EXPECT_EQ(winograd_plan_f4().input_transform_adds(), 192);
  // A^T per-row adds (4,3,3,4)=14; (6+4)*14 = 140.
  EXPECT_EQ(winograd_plan_f4().inverse_transform_adds(), 140);
}

TEST(WinogradPlans, MulReductionFactors) {
  ConvDesc desc;
  desc.in_c = 16;
  desc.in_h = 16;
  desc.in_w = 16;
  desc.out_c = 16;
  // Even tiling: F(2,3) uses 16 muls per 4 outputs = 4/9 of direct's 9.
  EXPECT_DOUBLE_EQ(winograd_mul_reduction(2, desc), 2.25);
  // F(4,3): 36 muls per 16 outputs vs 144 direct.
  EXPECT_DOUBLE_EQ(winograd_mul_reduction(4, desc), 4.0);
}

}  // namespace
}  // namespace winofault
