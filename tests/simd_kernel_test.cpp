// Exactness matrix for the explicit SIMD GEMM microkernel and the batched
// golden path: every dispatch level (scalar / AVX2 / AVX-512, forced via
// set_gemm_isa) must be bit-identical to the instrumented reference on
// shapes covering the tile kernel, its e-tails, and the small-extent dot
// kernel; batched golden builds must be bit-identical to batch-1 builds at
// every level. Plus the work-stealing determinism contract of parallel_for:
// each index runs exactly once and results never depend on the thread
// count or steal interleaving.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "conv/direct_conv.h"
#include "conv/gemm_kernel.h"
#include "nn/dataset.h"
#include "nn/network.h"
#include "test_util.h"

namespace winofault {
namespace {

using testing::ConvProblem;
using testing::expect_tensors_equal;
using testing::make_problem;

std::vector<GemmIsa> supported_isas() {
  std::vector<GemmIsa> isas{GemmIsa::kScalar};
  if (best_supported_gemm_isa() >= GemmIsa::kAvx2)
    isas.push_back(GemmIsa::kAvx2);
  if (best_supported_gemm_isa() >= GemmIsa::kAvx512)
    isas.push_back(GemmIsa::kAvx512);
  return isas;
}

// Restores the startup dispatch level even when an assertion fails, so one
// test's forced ISA can't leak into the rest of the suite.
struct IsaGuard {
  GemmIsa prev = active_gemm_isa();
  ~IsaGuard() { set_gemm_isa(prev); }
};

struct GemmShape {
  std::int64_t in_c, hw, out_c, k;
};

TEST(SimdKernel, AllIsaLevelsMatchInstrumentedReference) {
  IsaGuard guard;
  // hw values chosen so e_count crosses the kernels' regimes: 2x2 (dot
  // kernel), odd e-tails below/above one vector width, and wide extents
  // (tile kernel main loop). out_c=5/9 exercise the 4-row tile's row tail.
  const GemmShape shapes[] = {
      {3, 2, 8, 3},    // e=4: dot-kernel path, scalar tail r
      {16, 2, 128, 3},  // e=4, deep-layer window (1152): dot main loop
      {8, 3, 5, 3},    // e=9: dot path with row tail
      {4, 5, 9, 1},    // 1x1 conv, e=25
      {6, 7, 12, 3},   // e=49: tile kernel with e-tail past vector width
      {5, 12, 7, 5},   // 5x5 window, e=144
      {12, 16, 16, 3},  // e=256: tile main loop
  };
  for (const GemmIsa isa : supported_isas()) {
    ASSERT_EQ(set_gemm_isa(isa), isa);
    for (const GemmShape& s : shapes) {
      Rng rng(0x5EED0000u + static_cast<std::uint64_t>(
                                s.in_c * 1000 + s.hw * 10 + s.k));
      ConvDesc desc;
      desc.in_c = s.in_c;
      desc.in_h = s.hw;
      desc.in_w = s.hw;
      desc.out_c = s.out_c;
      desc.kh = desc.kw = s.k;
      desc.pad = s.k / 2;
      const ConvProblem p = make_problem(rng, desc);
      const TensorI32 reference = direct_forward_reference(desc, p.data());
      const TensorI32 gemm = direct_forward_gemm(desc, p.data());
      SCOPED_TRACE(std::string("isa=") + gemm_isa_name(isa));
      expect_tensors_equal(gemm, reference, "gemm vs instrumented ref");
    }
  }
}

TEST(SimdKernel, ForcingAboveCpuCapabilityClampsDown) {
  IsaGuard guard;
  const GemmIsa best = best_supported_gemm_isa();
  // Requesting the top level never installs more than the CPU has; on
  // full-AVX-512 machines this degenerates to an exact-match check.
  EXPECT_LE(set_gemm_isa(GemmIsa::kAvx512), best);
  EXPECT_EQ(set_gemm_isa(GemmIsa::kScalar), GemmIsa::kScalar);
}

// Small mixed tower whose tail convs run at 2x2 spatial extent — the
// regime where the batched column matrix (batch * e_count) changes which
// microkernel runs, which must never change the bits.
Network batch_net() {
  Network net("batch-test", DType::kInt16);
  Rng rng(77);
  int x = net.add_input(Shape{1, 3, 16, 16});
  x = net.add_conv(x, 12, 3, 1, 1, rng);
  x = net.add_maxpool(x, 2, 2);
  x = net.add_conv(x, 24, 3, 1, 1, rng);
  x = net.add_maxpool(x, 2, 2);
  x = net.add_conv(x, 32, 3, 1, 1, rng);
  x = net.add_maxpool(x, 2, 2);
  x = net.add_conv(x, 32, 3, 1, 1, rng);
  x = net.add_global_avgpool(x);
  x = net.add_flatten(x);
  x = net.add_linear(x, 10, rng);
  net.set_output(x);
  net.calibrate(make_images(net.input_shape(), 2, 5));
  return net;
}

TEST(SimdKernel, BatchedGoldenBitIdenticalToBatch1AtEveryIsa) {
  IsaGuard guard;
  const Network net = batch_net();
  const std::vector<TensorF> images = make_images(net.input_shape(), 5, 21);
  for (const GemmIsa isa : supported_isas()) {
    ASSERT_EQ(set_gemm_isa(isa), isa);
    for (const ConvPolicy policy :
         {ConvPolicy::kDirect, ConvPolicy::kWinograd2}) {
      const std::vector<GoldenCache> batched =
          net.make_golden_batch(images, policy);
      ASSERT_EQ(batched.size(), images.size());
      for (std::size_t b = 0; b < images.size(); ++b) {
        SCOPED_TRACE(std::string("isa=") + gemm_isa_name(isa) +
                     " policy=" + std::to_string(static_cast<int>(policy)) +
                     " image=" + std::to_string(b));
        const GoldenCache single = net.make_golden(images[b], policy);
        ASSERT_EQ(batched[b].prediction(), single.prediction());
        expect_tensors_equal(batched[b].logits(), single.logits(),
                             "batched logits");
        for (int n = 0; n < net.num_nodes(); ++n) {
          expect_tensors_equal(batched[b].node_output(n).tensor,
                               single.node_output(n).tensor,
                               "batched node activation");
        }
      }
    }
  }
}

TEST(SimdKernel, BatchOfOneIsTheBatch1Path) {
  const Network net = batch_net();
  const std::vector<TensorF> images = make_images(net.input_shape(), 1, 33);
  const std::vector<GoldenCache> batched =
      net.make_golden_batch(images, ConvPolicy::kDirect);
  const GoldenCache single = net.make_golden(images[0], ConvPolicy::kDirect);
  ASSERT_EQ(batched.size(), 1u);
  expect_tensors_equal(batched[0].logits(), single.logits(), "logits");
}

// ---- Work-stealing determinism -------------------------------------------

// Each index must execute exactly once regardless of how thieves carve up
// the slots, and an i-keyed body must produce thread-count-independent
// results. Uneven per-index cost provokes actual stealing.
TEST(WorkStealing, EachIndexRunsExactlyOnceUnderUnevenLoad) {
  const std::int64_t n = 40000;
  for (const int threads : {1, 2, 3, 8}) {
    std::vector<std::atomic<int>> runs(static_cast<std::size_t>(n));
    for (auto& r : runs) r.store(0);
    parallel_for(n, threads, [&](std::int64_t i) {
      // Skewed cost: the first slots' indices are ~100x more expensive, so
      // their initial contiguous ranges must be stolen for the pool to
      // finish balanced.
      volatile std::int64_t sink = 0;
      const std::int64_t spin = (i < n / 8) ? 400 : 4;
      for (std::int64_t s = 0; s < spin; ++s) sink += s;
      runs[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(runs[static_cast<std::size_t>(i)].load(), 1)
          << "threads=" << threads << " index " << i;
    }
  }
}

TEST(WorkStealing, ResultsIndependentOfThreadCountAndInterleaving) {
  const std::int64_t n = 10000;
  const auto run = [&](int threads) {
    std::vector<std::uint64_t> out(static_cast<std::size_t>(n), 0);
    parallel_for(n, threads, [&](std::int64_t i) {
      std::uint64_t h = static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
      h ^= h >> 29;
      out[static_cast<std::size_t>(i)] = h;
    });
    return out;
  };
  const std::vector<std::uint64_t> reference = run(1);
  for (const int threads : {2, 5, 8}) {
    // Repeat: steal interleavings differ run to run; results must not.
    for (int rep = 0; rep < 3; ++rep) {
      ASSERT_EQ(run(threads), reference)
          << "threads=" << threads << " rep=" << rep;
    }
  }
}

TEST(WorkStealing, NestedParallelForRunsInline) {
  // A body that itself calls parallel_for must not deadlock or double-run
  // indices: the inner call detects pool context and runs inline.
  const std::int64_t outer = 64, inner = 64;
  std::vector<std::atomic<int>> runs(static_cast<std::size_t>(outer * inner));
  for (auto& r : runs) r.store(0);
  parallel_for(outer, 4, [&](std::int64_t i) {
    parallel_for(inner, 4, [&](std::int64_t j) {
      runs[static_cast<std::size_t>(i * inner + j)].fetch_add(1);
    });
  });
  for (auto& r : runs) ASSERT_EQ(r.load(), 1);
}

}  // namespace
}  // namespace winofault
