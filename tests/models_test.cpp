// Model-zoo construction tests at tiny width: topology sizes, calibration,
// cross-policy fault-free equivalence, and Winograd mul reduction at the
// network level for each of the paper's four benchmarks.
#include <gtest/gtest.h>

#include "nn/dataset.h"
#include "nn/models/zoo.h"
#include "test_util.h"

namespace winofault {
namespace {

ZooConfig tiny_config() {
  ZooConfig config;
  config.width = 0.05;  // floor at 4 channels everywhere: fast smoke builds
  config.calib_images = 2;
  config.seed = 314;
  return config;
}

TEST(Zoo, RegistryHasAllFourBenchmarks) {
  const auto zoo = model_zoo();
  ASSERT_EQ(zoo.size(), 4u);
  EXPECT_EQ(zoo[0].name, "densenet169");
  EXPECT_EQ(zoo[1].name, "resnet50");
  EXPECT_EQ(zoo[2].name, "vgg19");
  EXPECT_EQ(zoo[3].name, "googlenet");
  EXPECT_DOUBLE_EQ(zoo_entry("vgg19").clean_accuracy, 0.726);
}

TEST(Zoo, ScaledChannelsFloorsAndEvens) {
  EXPECT_EQ(scaled_channels(64, 0.25), 16);
  EXPECT_EQ(scaled_channels(64, 1.0), 64);
  EXPECT_EQ(scaled_channels(3, 0.25), 4);    // floor
  EXPECT_EQ(scaled_channels(100, 0.25), 26); // 25 -> rounded up to even
}

struct ZooCase {
  const char* name;
  int expected_protectable;
};

class ZooBuild : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ZooBuild, ConstructsCalibratesAndPredicts) {
  const ZooCase& c = GetParam();
  const ZooEntry& entry = zoo_entry(c.name);
  const Network net = entry.build(tiny_config());
  EXPECT_TRUE(net.calibrated());
  EXPECT_EQ(net.num_protectable(), c.expected_protectable) << c.name;

  const auto images = make_images(net.input_shape(), 2, 1234);
  ExecContext ctx;
  for (const TensorF& image : images) {
    const int prediction = net.predict(image, ctx);
    EXPECT_GE(prediction, 0);
    EXPECT_LT(prediction, entry.num_classes);
  }
}

TEST_P(ZooBuild, WinogradMatchesDirectFaultFree) {
  const ZooCase& c = GetParam();
  const Network net = zoo_entry(c.name).build(tiny_config());
  const auto images = make_images(net.input_shape(), 1, 4321);
  ExecContext direct_ctx;
  const TensorI32 ref = net.forward(images[0], direct_ctx);
  ExecContext wg_ctx;
  wg_ctx.policy = ConvPolicy::kWinograd4;
  const TensorI32 wg = net.forward(images[0], wg_ctx);
  testing::expect_tensors_equal(ref, wg, c.name);
}

TEST_P(ZooBuild, WinogradReducesNetworkMuls) {
  const ZooCase& c = GetParam();
  const Network net = zoo_entry(c.name).build(tiny_config());
  const OpSpace direct = net.total_op_space(ConvPolicy::kDirect);
  const OpSpace wg = net.total_op_space(ConvPolicy::kWinograd4);
  EXPECT_LT(wg.n_mul, direct.n_mul) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ZooBuild,
    ::testing::Values(
        // VGG19: 16 convs + 1 linear.
        ZooCase{"vgg19", 17},
        // ResNet50: stem + 16 blocks * 3 convs + 4 projections + fc = 54.
        ZooCase{"resnet50", 54},
        // DenseNet169: stem + 82*2 dense convs + 3 transitions + fc = 169.
        ZooCase{"densenet169", 169},
        // GoogLeNet: stem + 9 inceptions * 6 convs + fc = 56.
        ZooCase{"googlenet", 56}),
    [](const ::testing::TestParamInfo<ZooCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace winofault
