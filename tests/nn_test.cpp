// Tests for the quantized inference engine: individual layers, builder
// shape inference, calibration, and the network-level equivalence of the
// direct and Winograd policies on fault-free runs.
#include <gtest/gtest.h>

#include "nn/dataset.h"
#include "nn/layers/eltwise_layer.h"
#include "nn/layers/pool_layer.h"
#include "nn/network.h"
#include "test_util.h"

namespace winofault {
namespace {

Network tiny_net(DType dtype, std::uint64_t seed = 7) {
  Network net("tiny", dtype);
  Rng rng(seed);
  int x = net.add_input(Shape{1, 3, 12, 12});
  x = net.add_conv(x, 8, 3, 1, 1, rng);
  x = net.add_maxpool(x, 2, 2);
  x = net.add_conv(x, 8, 3, 1, 1, rng);
  x = net.add_global_avgpool(x);
  x = net.add_flatten(x);
  x = net.add_linear(x, 5, rng);
  net.set_output(x);
  net.calibrate(make_images(net.input_shape(), 3, seed ^ 1));
  return net;
}

TEST(Network, BuildsAndCalibrates) {
  const Network net = tiny_net(DType::kInt16);
  EXPECT_TRUE(net.calibrated());
  EXPECT_EQ(net.num_protectable(), 3);  // 2 convs + linear
  EXPECT_EQ(net.input_shape(), (Shape{1, 3, 12, 12}));
}

TEST(Network, PredictIsDeterministic) {
  const Network net = tiny_net(DType::kInt16);
  const auto images = make_images(net.input_shape(), 4, 99);
  ExecContext ctx;
  for (const TensorF& image : images) {
    const int a = net.predict(image, ctx);
    const int b = net.predict(image, ctx);
    EXPECT_EQ(a, b);
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 5);
  }
}

TEST(Network, WinogradPoliciesMatchDirectFaultFree) {
  for (const DType dtype : {DType::kInt8, DType::kInt16}) {
    const Network net = tiny_net(dtype);
    const auto images = make_images(net.input_shape(), 6, 123);
    for (const TensorF& image : images) {
      ExecContext direct_ctx;
      direct_ctx.policy = ConvPolicy::kDirect;
      const TensorI32 ref = net.forward(image, direct_ctx);
      for (const ConvPolicy policy :
           {ConvPolicy::kWinograd2, ConvPolicy::kWinograd4}) {
        ExecContext ctx;
        ctx.policy = policy;
        const TensorI32 out = net.forward(image, ctx);
        testing::expect_tensors_equal(ref, out, "policy equivalence");
      }
    }
  }
}

TEST(Network, OpSpacesShrinkUnderWinograd) {
  const Network net = tiny_net(DType::kInt16);
  const OpSpace direct = net.total_op_space(ConvPolicy::kDirect);
  const OpSpace wg2 = net.total_op_space(ConvPolicy::kWinograd2);
  const OpSpace wg4 = net.total_op_space(ConvPolicy::kWinograd4);
  EXPECT_GT(direct.n_mul, wg2.n_mul);
  EXPECT_GT(wg2.n_mul, wg4.n_mul);
  EXPECT_GT(direct.n_mul, 0);
}

TEST(Network, ProtectableOpSpaceMatchesLayer) {
  const Network net = tiny_net(DType::kInt16);
  OpSpace sum;
  for (int p = 0; p < net.num_protectable(); ++p)
    sum += net.protectable_op_space(p, ConvPolicy::kDirect);
  const OpSpace total = net.total_op_space(ConvPolicy::kDirect);
  EXPECT_EQ(sum.n_mul, total.n_mul);
  EXPECT_EQ(sum.n_add, total.n_add);
}

TEST(PoolLayers, MaxAndAvgSemantics) {
  NodeOutput in;
  in.tensor = TensorI32(Shape{1, 1, 2, 2});
  in.tensor.at(0, 0, 0, 0) = 1;
  in.tensor.at(0, 0, 0, 1) = 5;
  in.tensor.at(0, 0, 1, 0) = -3;
  in.tensor.at(0, 0, 1, 1) = 2;
  in.quant = QuantParams{0.5, DType::kInt16};
  const NodeOutput* ins[] = {&in};
  ExecContext ctx;

  PoolLayer maxpool(PoolMode::kMax, 2, 2);
  const TensorI32 mx = maxpool.forward({ins, 1}, in.quant, ctx, -1);
  EXPECT_EQ(mx.at(0, 0, 0, 0), 5);

  PoolLayer avgpool(PoolMode::kAvg, 2, 2);
  const TensorI32 av = avgpool.forward({ins, 1}, in.quant, ctx, -1);
  EXPECT_EQ(av.at(0, 0, 0, 0), 1);  // (1+5-3+2+2)/4 = 1.25 -> rounds to 1

  GlobalAvgPoolLayer gap;
  const TensorI32 gp = gap.forward({ins, 1}, in.quant, ctx, -1);
  EXPECT_EQ(gp.at(0, 0, 0, 0), 1);
}

TEST(AddLayer, RescalesAndSaturates) {
  NodeOutput a, b;
  a.tensor = TensorI32(Shape{1, 1, 1, 2});
  b.tensor = TensorI32(Shape{1, 1, 1, 2});
  a.quant = QuantParams{1.0, DType::kInt8};
  b.quant = QuantParams{2.0, DType::kInt8};
  a.tensor[0] = 10;   // real 10
  b.tensor[0] = 20;   // real 40
  a.tensor[1] = 127;  // real 127
  b.tensor[1] = 127;  // real 254
  AddLayer add;
  const QuantParams in_q[] = {a.quant, b.quant};
  const QuantParams out_q = add.derive_quant({in_q, 2}, DType::kInt8);
  EXPECT_DOUBLE_EQ(out_q.scale, 3.0);
  const NodeOutput* ins[] = {&a, &b};
  ExecContext ctx;
  const TensorI32 out = add.forward({ins, 2}, out_q, ctx, -1);
  // real 50 at scale 3 -> 16.67 -> 17 (rounding of each term: 3+13=16 or so)
  EXPECT_NEAR(out[0] * 3.0, 50.0, 3.0);
  // real 381 at scale 3 = 127: at the positive rail.
  EXPECT_EQ(out[1], 127);
}

TEST(ConcatLayer, LaysOutChannelsAndRescales) {
  NodeOutput a, b;
  a.tensor = TensorI32(Shape{1, 1, 2, 2});
  b.tensor = TensorI32(Shape{1, 2, 2, 2});
  a.quant = QuantParams{1.0, DType::kInt16};
  b.quant = QuantParams{0.5, DType::kInt16};
  a.tensor.fill(10);
  b.tensor.fill(8);
  ConcatLayer concat;
  const QuantParams in_q[] = {a.quant, b.quant};
  const QuantParams out_q = concat.derive_quant({in_q, 2}, DType::kInt16);
  EXPECT_DOUBLE_EQ(out_q.scale, 1.0);
  const NodeOutput* ins[] = {&a, &b};
  ExecContext ctx;
  const TensorI32 out = concat.forward({ins, 2}, out_q, ctx, -1);
  EXPECT_EQ(out.shape(), (Shape{1, 3, 2, 2}));
  EXPECT_EQ(out.at(0, 0, 0, 0), 10);  // scale 1 -> unchanged
  EXPECT_EQ(out.at(0, 1, 0, 0), 4);   // real 4 at scale 1
  EXPECT_EQ(out.at(0, 2, 1, 1), 4);
}

TEST(Dataset, TeacherLabelsHitTargetCleanAccuracy) {
  const Network net = tiny_net(DType::kInt16);
  const Dataset data = make_teacher_dataset(net, 300, 5, 0.8, 42);
  ExecContext ctx;
  int correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    correct += net.predict(data.images[i], ctx) == data.labels[i];
  }
  const double accuracy = static_cast<double>(correct) / data.size();
  EXPECT_NEAR(accuracy, 0.8, 0.07);
}

TEST(Dataset, ImagesAreDeterministicPerSeed) {
  const auto a = make_images(Shape{1, 3, 8, 8}, 2, 5);
  const auto b = make_images(Shape{1, 3, 8, 8}, 2, 5);
  const auto c = make_images(Shape{1, 3, 8, 8}, 2, 6);
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a[1], b[1]);
  EXPECT_NE(a[0], c[0]);
}

}  // namespace
}  // namespace winofault
