// Campaign-engine guarantees:
//   (a) a multi-point campaign (shared goldens, one schedule) is
//       bit-identical to point-by-point evaluate() calls, for op-level,
//       neuron-level, protected, and scratch points;
//   (b) the golden LRU shares exactly one build per (image, policy) and
//       stays bit-exact at any capacity, including a capacity of one;
//   (c) results are independent of the thread count;
//   (d) the destruction short-circuit triggers strictly above
//       max_expected_flips and simulates at or below it;
//   (e) `trials` plumbs through the sweep/layerwise/explorer spec builders;
//   (f) telemetry is observation-only: tracing on, off, or toggled
//       mid-grid never changes a single result bit.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>
#include <cstdlib>

#include "common/telemetry/telemetry.h"
#include "core/analysis/layer_vulnerability.h"
#include "core/analysis/network_sweep.h"
#include "core/campaign/campaign.h"
#include "core/energy/voltage_explorer.h"
#include "core/service/protocol.h"
#include "core/store/hash.h"
#include "fault/fault_model.h"
#include "nn/models/zoo.h"

namespace winofault {
namespace {

// This suite asserts the numeric semantics of the built-in flip@op
// injector (expected flip counts, degradation curves). Pin the built-in
// model so the registry-model CI leg (WINOFAULT_FAULT_MODEL) can run the
// full suite without changing what this file tests.
const bool kBuiltinModelPinned = [] {
  unsetenv("WINOFAULT_FAULT_MODEL");
  return true;
}();

struct Fixture {
  Network net;
  Dataset data;
};

Fixture make_fixture(int images = 12) {
  Network net("campaign", DType::kInt16);
  Rng rng(83);
  int x = net.add_input(Shape{1, 3, 12, 12});
  x = net.add_conv(x, 8, 3, 1, 1, rng);
  x = net.add_conv(x, 8, 3, 1, 1, rng);
  x = net.add_maxpool(x, 2, 2);
  x = net.add_conv(x, 12, 3, 1, 1, rng);
  x = net.add_global_avgpool(x);
  x = net.add_flatten(x);
  x = net.add_linear(x, 5, rng);
  net.set_output(x);
  net.calibrate(make_images(net.input_shape(), 3, 19));
  Dataset data = make_teacher_dataset(net, images, 5, 0.9, 27);
  return Fixture{std::move(net), std::move(data)};
}

// A Fig-2-style grid plus protected / neuron-level / scratch points, so the
// campaign crosses every execution path evaluate() has.
std::vector<CampaignPoint> mixed_grid() {
  std::vector<CampaignPoint> points;
  for (const double ber : {1e-7, 3e-6}) {
    for (const ConvPolicy policy :
         {ConvPolicy::kDirect, ConvPolicy::kWinograd2}) {
      CampaignPoint point;
      point.fault.ber = ber;
      point.policy = policy;
      point.seed = 7;
      point.trials = 3;
      points.push_back(std::move(point));
    }
  }
  CampaignPoint neuron;
  neuron.fault.ber = 1e-5;
  neuron.fault.mode = InjectionMode::kNeuronLevel;
  neuron.seed = 7;
  neuron.trials = 2;
  points.push_back(std::move(neuron));

  CampaignPoint protect;
  protect.fault.ber = 3e-6;
  protect.fault.protection[0] = ProtectionSet(1.0, 0.5);
  protect.seed = 9;
  protect.trials = 2;
  points.push_back(std::move(protect));

  CampaignPoint excl;
  excl.fault.ber = 3e-6;
  excl.fault.fault_free_layer = 1;
  excl.seed = 9;
  points.push_back(std::move(excl));

  CampaignPoint scratch;
  scratch.fault.ber = 1e-6;
  scratch.reuse_golden = false;
  scratch.seed = 11;
  scratch.trials = 2;
  points.push_back(std::move(scratch));
  return points;
}

EvalOptions to_eval_options(const CampaignPoint& point) {
  EvalOptions options;
  options.fault = point.fault;
  options.policy = point.policy;
  options.seed = point.seed;
  options.trials = point.trials;
  options.reuse_golden = point.reuse_golden;
  options.max_expected_flips = point.max_expected_flips;
  return options;
}

TEST(Campaign, MultiPointGridMatchesPointByPointEvaluate) {
  const Fixture f = make_fixture();
  CampaignSpec spec;
  spec.points = mixed_grid();
  const CampaignResult campaign = run_campaign(f.net, f.data, spec);
  ASSERT_EQ(campaign.points.size(), spec.points.size());
  for (std::size_t p = 0; p < spec.points.size(); ++p) {
    const EvalResult single =
        evaluate(f.net, f.data, to_eval_options(spec.points[p]));
    EXPECT_DOUBLE_EQ(campaign.points[p].accuracy, single.accuracy)
        << "point " << p;
    EXPECT_DOUBLE_EQ(campaign.points[p].avg_flips, single.avg_flips)
        << "point " << p;
    EXPECT_EQ(campaign.points[p].images, single.images) << "point " << p;
  }
}

TEST(Campaign, GoldenBuildsSharedPerImagePolicy) {
  const Fixture f = make_fixture(6);
  CampaignSpec spec;
  spec.points = mixed_grid();
  spec.threads = 1;  // deterministic hit/miss accounting
  spec.golden_capacity = 64;
  const CampaignResult campaign = run_campaign(f.net, f.data, spec);
  // 7 reuse_golden points over 2 policies: one build per (image, policy).
  EXPECT_EQ(campaign.stats.golden_builds,
            static_cast<std::int64_t>(f.data.size()) * 2);
  // Wave priming batch-builds every (image, policy) golden before its
  // wave's cells run, so ALL (image, reuse-point) lookups are hits.
  EXPECT_EQ(campaign.stats.golden_hits,
            static_cast<std::int64_t>(f.data.size()) * 7);
  EXPECT_EQ(campaign.stats.golden_evictions, 0);
  EXPECT_EQ(campaign.stats.short_circuited_points, 0);
}

TEST(Campaign, TinyLruCapacityStaysBitExact) {
  const Fixture f = make_fixture(8);
  CampaignSpec big;
  big.points = mixed_grid();
  big.golden_capacity = 64;
  CampaignSpec tiny = big;
  tiny.golden_capacity = 1;  // worst case: every other lookup rebuilds
  const CampaignResult a = run_campaign(f.net, f.data, big);
  const CampaignResult b = run_campaign(f.net, f.data, tiny);
  EXPECT_GT(b.stats.golden_evictions, 0);
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    EXPECT_DOUBLE_EQ(a.points[p].accuracy, b.points[p].accuracy);
    EXPECT_DOUBLE_EQ(a.points[p].avg_flips, b.points[p].avg_flips);
  }
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  const Fixture f = make_fixture();
  CampaignSpec spec;
  spec.points = mixed_grid();
  spec.threads = 1;
  const CampaignResult serial = run_campaign(f.net, f.data, spec);
  spec.threads = 5;
  const CampaignResult parallel = run_campaign(f.net, f.data, spec);
  for (std::size_t p = 0; p < serial.points.size(); ++p) {
    EXPECT_DOUBLE_EQ(serial.points[p].accuracy, parallel.points[p].accuracy);
    EXPECT_DOUBLE_EQ(serial.points[p].avg_flips,
                     parallel.points[p].avg_flips);
  }
}

// ---- (b') build-future dedup survives eviction mid-build ----

// Two threads request an entry that a third evicts while its build is
// still in flight: both waiters must resolve to the single build's pointer
// (no duplicate build, no deadlock), and the eviction must only cost a
// rebuild on the NEXT request.
TEST(GoldenLru, ConcurrentWaitersSurviveEvictionMidBuild) {
  GoldenLru lru(1);
  std::atomic<int> x_builds{0};
  std::promise<void> x_started;
  std::promise<void> release_x;
  std::shared_future<void> release = release_x.get_future().share();

  const auto slow_build_x = [&] {
    x_builds.fetch_add(1);
    x_started.set_value();
    release.wait();  // park the build until the evictor has run
    return GoldenCache{};
  };

  GoldenLru::Ptr a_ptr, b_ptr, c_ptr;
  std::thread a([&] {
    a_ptr = lru.get_or_build(0, ConvPolicy::kDirect, slow_build_x);
  });
  x_started.get_future().wait();

  // B and C attach to the in-flight build; each registers as a hit before
  // blocking, so waiting on hits() == 2 guarantees they hold the future
  // BEFORE the eviction below.
  const auto must_not_build = [&]() -> GoldenCache {
    ADD_FAILURE() << "dedup violated: waiter rebuilt an in-flight entry";
    return GoldenCache{};
  };
  std::thread b([&] {
    b_ptr = lru.get_or_build(0, ConvPolicy::kDirect, must_not_build);
  });
  std::thread c([&] {
    c_ptr = lru.get_or_build(0, ConvPolicy::kDirect, must_not_build);
  });
  while (lru.hits() < 2) std::this_thread::yield();

  // D inserts a different key into the capacity-1 cache, evicting X while
  // its build is parked.
  const GoldenLru::Ptr d_ptr =
      lru.get_or_build(1, ConvPolicy::kDirect, [] { return GoldenCache{}; });
  ASSERT_NE(d_ptr, nullptr);
  EXPECT_EQ(lru.evictions(), 1);

  release_x.set_value();
  a.join();
  b.join();
  c.join();
  EXPECT_EQ(x_builds.load(), 1);  // one build served all three
  ASSERT_NE(a_ptr, nullptr);
  EXPECT_EQ(a_ptr, b_ptr);
  EXPECT_EQ(a_ptr, c_ptr);

  // X was evicted mid-build, so the next request rebuilds it — eviction
  // cost a rebuild, never a wrong pointer.
  lru.get_or_build(0, ConvPolicy::kDirect, [&] {
    x_builds.fetch_add(1);
    return GoldenCache{};
  });
  EXPECT_EQ(x_builds.load(), 2);
  EXPECT_EQ(lru.builds(), 3);  // X twice, Y once
}

// ---- (d) destruction short-circuit boundary ----

TEST(Campaign, DestructionShortCircuitBoundary) {
  const Fixture f = make_fixture(6);
  const double ber = 1e-4;
  const double expected =
      FaultModel{ber}.expected_flips(f.net.total_op_space(ConvPolicy::kDirect));
  ASSERT_GT(expected, 0.0);

  EvalOptions options;
  options.fault.ber = ber;
  options.seed = 3;

  // Threshold just below the expected flips: the evaluator must report
  // chance accuracy and the analytic flip expectation without simulating.
  options.max_expected_flips = expected * (1.0 - 1e-9);
  const EvalResult shorted = evaluate(f.net, f.data, options);
  EXPECT_DOUBLE_EQ(shorted.accuracy, 1.0 / f.data.num_classes);
  EXPECT_DOUBLE_EQ(shorted.avg_flips, expected);

  // Threshold exactly at the expected flips: expected <= threshold, so the
  // run is simulated (avg_flips is a sampled value, almost surely not the
  // analytic expectation; accuracy comes from real replays).
  options.max_expected_flips = expected;
  const EvalResult at = evaluate(f.net, f.data, options);
  // Threshold just above: also simulated, and identical to the
  // effectively-unbounded run.
  options.max_expected_flips = expected * (1.0 + 1e-9);
  const EvalResult above = evaluate(f.net, f.data, options);
  options.max_expected_flips = 1e300;
  const EvalResult unbounded = evaluate(f.net, f.data, options);
  EXPECT_DOUBLE_EQ(at.accuracy, unbounded.accuracy);
  EXPECT_DOUBLE_EQ(at.avg_flips, unbounded.avg_flips);
  EXPECT_DOUBLE_EQ(above.accuracy, unbounded.accuracy);
  EXPECT_DOUBLE_EQ(above.avg_flips, unbounded.avg_flips);

  // A campaign mixing a short-circuited and a simulated point resolves
  // each independently.
  CampaignPoint hot;
  hot.fault.ber = ber;
  hot.seed = 3;
  hot.max_expected_flips = expected / 2;
  CampaignPoint sim = hot;
  sim.max_expected_flips = expected * 2;
  CampaignSpec spec;
  spec.points = {hot, sim};
  const CampaignResult campaign = run_campaign(f.net, f.data, spec);
  EXPECT_EQ(campaign.stats.short_circuited_points, 1);
  EXPECT_DOUBLE_EQ(campaign.points[0].accuracy, shorted.accuracy);
  EXPECT_DOUBLE_EQ(campaign.points[0].avg_flips, shorted.avg_flips);
  EXPECT_DOUBLE_EQ(campaign.points[1].accuracy, unbounded.accuracy);
  EXPECT_DOUBLE_EQ(campaign.points[1].avg_flips, unbounded.avg_flips);
}

// ---- (e) trials plumb through the spec builders ----

TEST(Campaign, TrialsPlumbThroughSweepBuilder) {
  const Fixture f = make_fixture(8);
  SweepOptions options;
  options.bers = {1e-6, 1e-5};
  options.seed = 17;
  options.trials = 3;
  const auto curve = accuracy_sweep(f.net, f.data, options);

  EvalOptions eval;
  eval.seed = 17;
  eval.trials = 3;
  for (std::size_t i = 0; i < options.bers.size(); ++i) {
    eval.fault.ber = options.bers[i];
    const EvalResult expected = evaluate(f.net, f.data, eval);
    EXPECT_DOUBLE_EQ(curve[i].accuracy, expected.accuracy);
    EXPECT_DOUBLE_EQ(curve[i].avg_flips, expected.avg_flips);
  }
}

TEST(Campaign, TrialsPlumbThroughLayerwiseAndExplorerBuilders) {
  const Fixture f = make_fixture(6);
  LayerwiseOptions lw;
  lw.ber = 3e-6;
  lw.seed = 29;
  lw.trials = 2;
  const LayerwiseResult layerwise = layer_vulnerability(f.net, f.data, lw);

  EvalOptions base;
  base.fault.ber = lw.ber;
  base.seed = lw.seed;
  base.trials = lw.trials;
  EXPECT_DOUBLE_EQ(layerwise.base_accuracy,
                   evaluate(f.net, f.data, base).accuracy);
  EvalOptions one = base;
  one.fault.fault_free_layer = 0;
  EXPECT_DOUBLE_EQ(layerwise.layers[0].accuracy_fault_free,
                   evaluate(f.net, f.data, one).accuracy);

  // The explorer's curve at `trials` matches direct evaluation of the
  // model's BER at that voltage.
  VoltageModel volt;
  volt.log10_ber_anchor = -7.0;
  const std::vector<double> grid = {0.80, 0.78};
  const auto curve = accuracy_vs_voltage(f.net, f.data, volt,
                                         ConvPolicy::kDirect, grid,
                                         /*seed=*/31, /*threads=*/0,
                                         /*trials=*/2);
  EvalOptions at_v;
  at_v.fault.ber = volt.ber_at(grid[1]);
  at_v.seed = 31;
  at_v.trials = 2;
  EXPECT_DOUBLE_EQ(curve[1].accuracy, evaluate(f.net, f.data, at_v).accuracy);
}

// The fault model is a campaign axis: the same (ber, policy, seed, trials)
// grid point hashes differently under every distinct model, so journaled
// results never cross-contaminate. The explicit "flip@op" spec hashes
// identically to a pre-registry point — old journals keep replaying.
TEST(Campaign, FaultModelJoinsCampaignPointHash) {
  CampaignPoint point;
  point.fault.ber = 1e-6;
  point.seed = 7;
  point.trials = 3;
  const std::uint64_t base_hash = campaign_point_hash(point);

  const char* specs[] = {"stuck0@weight", "stuck0@weight#perm",
                         "stuck1@weight", "toggle@accum",
                         "stuck0(0.01)@weight#perm"};
  std::vector<std::uint64_t> hashes = {base_hash};
  for (const char* spec : specs) {
    CampaignPoint modeled = point;
    modeled.fault.model = *FaultModelSpec::parse(spec);
    hashes.push_back(campaign_point_hash(modeled));
  }
  for (std::size_t i = 0; i < hashes.size(); ++i) {
    for (std::size_t j = i + 1; j < hashes.size(); ++j) {
      EXPECT_NE(hashes[i], hashes[j]) << "i=" << i << " j=" << j;
    }
  }

  CampaignPoint explicit_default = point;
  explicit_default.fault.model = *FaultModelSpec::parse("flip@op");
  EXPECT_EQ(campaign_point_hash(explicit_default), base_hash);
}

// ---- (f) telemetry is observation-only ----

// The determinism contract of common/telemetry: the same grid run with
// tracing off, tracing on, and tracing toggled between runs produces
// bit-identical results, and the trace file is well-formed JSON.
TEST(Campaign, TelemetryTracingPreservesBitIdentity) {
  const Fixture f = make_fixture(8);
  CampaignSpec spec;
  spec.points = mixed_grid();

  telemetry::set_trace_path("");  // ensure a clean off baseline
  const CampaignResult untraced = run_campaign(f.net, f.data, spec);

  const std::string trace_path =
      ::testing::TempDir() + "winofault_campaign_trace.json";
  std::filesystem::remove(trace_path);
  telemetry::set_trace_path(trace_path);
  const CampaignResult traced = run_campaign(f.net, f.data, spec);
  telemetry::flush_trace();
  telemetry::set_trace_path("");
  const CampaignResult toggled = run_campaign(f.net, f.data, spec);

  ASSERT_EQ(untraced.points.size(), traced.points.size());
  ASSERT_EQ(untraced.points.size(), toggled.points.size());
  for (std::size_t p = 0; p < untraced.points.size(); ++p) {
    EXPECT_DOUBLE_EQ(untraced.points[p].accuracy, traced.points[p].accuracy);
    EXPECT_DOUBLE_EQ(untraced.points[p].avg_flips,
                     traced.points[p].avg_flips);
    EXPECT_DOUBLE_EQ(untraced.points[p].accuracy,
                     toggled.points[p].accuracy);
    EXPECT_DOUBLE_EQ(untraced.points[p].avg_flips,
                     toggled.points[p].avg_flips);
  }

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::optional<Json> doc = Json::parse(buffer.str());
  ASSERT_TRUE(doc.has_value());
  const Json* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // The campaign run emits wave + cell spans; at least one of each tier.
  bool saw_wave = false, saw_cell = false;
  for (const Json& event : events->elements()) {
    const Json* name = event.find("name");
    if (name == nullptr) continue;
    if (name->as_string() == "campaign_wave") saw_wave = true;
    if (name->as_string() == "cell_replay" ||
        name->as_string() == "cell_inject") {
      saw_cell = true;
    }
  }
  EXPECT_TRUE(saw_wave);
  EXPECT_TRUE(saw_cell);
  std::filesystem::remove(trace_path);
}

}  // namespace
}  // namespace winofault
